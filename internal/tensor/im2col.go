package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution with the
// given input size, kernel, stride and symmetric padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds an NCHW input into a matrix of shape
// [C*KH*KW, N*OH*OW] so that a convolution becomes a single matrix
// multiplication with a [Cout, C*KH*KW] weight matrix.
//
// Padding is zero-padding; stride applies to both spatial dimensions.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	return Im2ColWith(Default(), x, kh, kw, stride, pad)
}

// Im2ColWith is Im2Col on an explicit backend.
func Im2ColWith(be Backend, x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, oh, ow := im2ColDims(x, kh, kw, stride, pad)
	out := New(c*kh*kw, n*oh*ow)
	be.Im2ColInto(out, x, kh, kw, stride, pad)
	return out
}

// Im2ColInto unfolds x into out, which must be [C*KH*KW, N*OH*OW]. The
// whole buffer is overwritten (padding positions are zeroed), so out may
// be recycled scratch.
func Im2ColInto(out, x *Tensor, kh, kw, stride, pad int) {
	Default().Im2ColInto(out, x, kh, kw, stride, pad)
}

// Col2Im folds a [C*KH*KW, N*OH*OW] column matrix back into an NCHW tensor
// of the given input geometry, accumulating overlapping contributions.
// It is the adjoint of Im2Col and is used by convolution backward passes.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	return Col2ImWith(Default(), cols, n, c, h, w, kh, kw, stride, pad)
}

// Col2ImWith is Col2Im on an explicit backend.
func Col2ImWith(be Backend, cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	checkCol2Im(cols, n, c, h, w, kh, kw, stride, pad)
	out := New(n, c, h, w)
	be.Col2ImInto(out, cols, kh, kw, stride, pad)
	return out
}

// Col2ImInto folds cols into out (NCHW), overwriting it. cols must be
// [C*KH*KW, N*OH*OW] for out's geometry.
func Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) {
	Default().Col2ImInto(out, cols, kh, kw, stride, pad)
}

// --- shape validation --------------------------------------------------------

func im2ColDims(x *Tensor, kh, kw, stride, pad int) (n, c, oh, ow int) {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires NCHW tensor, got shape %v", x.shape))
	}
	n, c = x.shape[0], x.shape[1]
	h, w := x.shape[2], x.shape[3]
	oh = ConvOutSize(h, kh, stride, pad)
	ow = ConvOutSize(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	return n, c, oh, ow
}

func checkIm2ColOut(out, x *Tensor, kh, kw, stride, pad int) (n, c, h, w, oh, ow int) {
	n, c, oh, ow = im2ColDims(x, kh, kw, stride, pad)
	h, w = x.shape[2], x.shape[3]
	if len(out.shape) != 2 || out.shape[0] != c*kh*kw || out.shape[1] != n*oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto output shape %v, want [%d %d]", out.shape, c*kh*kw, n*oh*ow))
	}
	return n, c, h, w, oh, ow
}

func checkCol2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) (oh, ow int) {
	oh = ConvOutSize(h, kh, stride, pad)
	ow = ConvOutSize(w, kw, stride, pad)
	wantRows, wantCols := c*kh*kw, n*oh*ow
	if len(cols.shape) != 2 || cols.shape[0] != wantRows || cols.shape[1] != wantCols {
		panic(fmt.Sprintf("tensor: Col2Im input shape %v, want [%d %d]", cols.shape, wantRows, wantCols))
	}
	return oh, ow
}

// --- range kernels -----------------------------------------------------------

// im2colRows fills output rows [lo,hi) of the column matrix. Each row is
// owned by exactly one (channel, kernel-offset) triple, so row ranges are
// disjoint and safe to fill in parallel.
func im2colRows(od, xd []float32, n, c, h, w, kh, kw, oh, ow, stride, pad, lo, hi int) {
	cols := n * oh * ow
	for row := lo; row < hi; row++ {
		kj := row % kw
		ki := (row / kw) % kh
		ci := row / (kw * kh)
		base := row * cols
		orow := od[base : base+cols]
		for i := range orow {
			orow[i] = 0
		}
		for ni := 0; ni < n; ni++ {
			inBase := (ni*c + ci) * h * w
			for oi := 0; oi < oh; oi++ {
				ih := oi*stride - pad + ki
				outBase := base + (ni*oh+oi)*ow
				if ih < 0 || ih >= h {
					continue // row already zeroed
				}
				inRow := inBase + ih*w
				for oj := 0; oj < ow; oj++ {
					iw := oj*stride - pad + kj
					if iw < 0 || iw >= w {
						continue
					}
					od[outBase+oj] = xd[inRow+iw]
				}
			}
		}
	}
}

// col2imChannels folds input channels [lo,hi) of the column matrix back
// into the NCHW output. Overlapping kernel taps only ever accumulate
// within one input channel, so partitioning along C keeps every output
// element owned by a single range — and the (ki,kj,ni,oi,oj) accumulation
// order inside a channel matches the serial reference exactly.
func col2imChannels(od, cd []float32, n, c, h, w, kh, kw, oh, ow, stride, pad, lo, hi int) {
	total := n * oh * ow
	for ci := lo; ci < hi; ci++ {
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * h * w
			blk := od[base : base+h*w]
			for i := range blk {
				blk[i] = 0
			}
		}
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ci*kh)+ki)*kw + kj
				rowBase := row * total
				for ni := 0; ni < n; ni++ {
					outBase := (ni*c + ci) * h * w
					for oi := 0; oi < oh; oi++ {
						ih := oi*stride - pad + ki
						if ih < 0 || ih >= h {
							continue
						}
						colBase := rowBase + (ni*oh+oi)*ow
						outRow := outBase + ih*w
						for oj := 0; oj < ow; oj++ {
							iw := oj*stride - pad + kj
							if iw < 0 || iw >= w {
								continue
							}
							od[outRow+iw] += cd[colBase+oj]
						}
					}
				}
			}
		}
	}
}
