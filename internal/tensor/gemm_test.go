package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file pins the packed GEMM engine bit-for-bit to the retained
// reference kernels on adversarial inputs: odd/prime dimensions, shapes
// smaller than the register tile, reductions spanning multiple kcBlock
// tiles, and values containing ±0, NaN and ±Inf. Comparisons are on raw
// float bits (math.Float32bits), so NaN payloads and zero signs count.

// packedMatMul runs the packed engine unconditionally (no small-size
// dispatch), serially or over a pool.
func packedMatMul(pool *Pool, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	out := New(m, n)
	gemmRun(pool, out.data, m, k, n,
		func(bp []float32, pan0, pan1 int) { packBPanels(bp, b.data, k, n, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATile(ap, a.data, k, i0, rows, p0, p1) })
	return out
}

func packedMatMulTA(pool *Pool, a, b *Tensor) *Tensor {
	m, k, n := matMulTADims(a, b)
	out := New(m, n)
	gemmRun(pool, out.data, m, k, n,
		func(bp []float32, pan0, pan1 int) { packBPanels(bp, b.data, k, n, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATileT(ap, a.data, m, i0, rows, p0, p1) })
	return out
}

func packedMatMulTB(pool *Pool, a, b *Tensor) *Tensor {
	m, k, n := matMulTBDims(a, b)
	out := New(m, n)
	gemmRun(pool, out.data, m, k, n,
		func(bp []float32, pan0, pan1 int) { packBPanelsTB(bp, b.data, k, n, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATile(ap, a.data, k, i0, rows, p0, p1) })
	return out
}

// bitsDiff compares raw float bits. One carve-out: when both sides are
// NaN they compare equal regardless of payload — if two NaNs meet in an
// add, IEEE 754 leaves the surviving payload implementation-defined and
// Go's instruction selection (not our kernels) picks the operand order,
// so payload identity is not a property the language lets us pin. Zero
// signs, infinities, and whether an element is NaN at all must match
// exactly.
func bitsDiff(got, want *Tensor) string {
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		return fmt.Sprintf("length %d vs %d", len(gd), len(wd))
	}
	for i := range gd {
		gn, wn := math.IsNaN(float64(gd[i])), math.IsNaN(float64(wd[i]))
		if gn && wn {
			continue
		}
		if gn != wn || math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
			return fmt.Sprintf("element %d: got %v (%#08x), want %v (%#08x)",
				i, gd[i], math.Float32bits(gd[i]), wd[i], math.Float32bits(wd[i]))
		}
	}
	return ""
}

// adversarialShapes covers dims below the register tile, primes, exact
// tile multiples, and reductions spanning several kcBlock tiles.
var adversarialShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 2},
	{3, 5, 7},           // everything below the tile
	{mrTile, 8, nrTile}, // exactly one full tile
	{5, 9, 11},
	{13, 17, 19}, // primes
	{31, 64, 9},
	{16, kcBlock + 1, 40},        // k one past a block boundary
	{7, 2*kcBlock + 17, 23},      // k spanning three blocks
	{mrTile + 1, 33, nrTile + 1}, // one past the tile
	{64, 300, 65},
}

// fillAdversarial seeds t with random values plus ±0, NaN and ±Inf
// sprinkled at deterministic positions. which selects the special set so
// callers can put NaNs in one operand and infinities in the other.
func fillAdversarial(rng *rand.Rand, t *Tensor, which int) {
	d := t.Data()
	for i := range d {
		d[i] = rng.Float32()*4 - 2
	}
	specials := [][]float32{
		{0, float32(math.Copysign(0, -1)), 0},
		{float32(math.NaN()), 0, float32(math.Copysign(0, -1))},
		{float32(math.Inf(1)), float32(math.Inf(-1)), 0},
	}
	set := specials[which%len(specials)]
	for i, v := range set {
		pos := (i*7 + 3) % len(d)
		d[pos] = v
	}
}

// TestPackedKernelsMatchReferenceBits is the satellite bit-equivalence
// suite: the packed engine (assembly and generic microkernels, serial
// and pooled schedules) must reproduce the retained reference kernels
// exactly on every adversarial shape and value class.
func TestPackedKernelsMatchReferenceBits(t *testing.T) {
	pools := []*Pool{nil, NewPool(3)}
	asmModes := []bool{false}
	if asmMicroAvailable {
		asmModes = append(asmModes, true)
	}
	defer func(prev bool) { useAsmMicro = prev }(useAsmMicro)
	rng := rand.New(rand.NewSource(99))
	for _, s := range adversarialShapes {
		for which := 0; which < 3; which++ {
			a := New(s.m, s.k)
			b := New(s.k, s.n)
			fillAdversarial(rng, a, which)
			fillAdversarial(rng, b, which+1)
			aT := Transpose2D(a)
			bT := Transpose2D(b)

			ref := New(s.m, s.n)
			matMulRowsRef(ref.data, a.data, b.data, s.k, s.n, 0, s.m)
			refTA := New(s.m, s.n)
			matMulTARowsRef(refTA.data, aT.data, b.data, s.k, s.m, s.n, 0, s.m)
			refTB := New(s.m, s.n)
			matMulTBRowsRef(refTB.data, a.data, bT.data, s.k, s.n, 0, s.m)

			for _, asm := range asmModes {
				useAsmMicro = asm
				for _, pool := range pools {
					label := fmt.Sprintf("m=%d k=%d n=%d specials=%d asm=%v pooled=%v",
						s.m, s.k, s.n, which, asm, pool != nil)
					if diff := bitsDiff(packedMatMul(pool, a, b), ref); diff != "" {
						t.Errorf("MatMul packed != reference (%s): %s", label, diff)
					}
					if diff := bitsDiff(packedMatMulTA(pool, aT, b), refTA); diff != "" {
						t.Errorf("MatMulTA packed != reference (%s): %s", label, diff)
					}
					if diff := bitsDiff(packedMatMulTB(pool, a, bT), refTB); diff != "" {
						t.Errorf("MatMulTB packed != reference (%s): %s", label, diff)
					}
				}
			}
		}
	}
}

// TestBackendDispatchMatchesReferenceBits drives the public backend
// entry points (which dispatch between reference and packed paths by
// size) against the reference kernels — the dispatch decision must never
// change bits.
func TestBackendDispatchMatchesReferenceBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	backends := []Backend{Serial{}, NewParallel(3)}
	for _, s := range adversarialShapes {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		fillAdversarial(rng, a, 0)
		fillAdversarial(rng, b, 2)
		ref := New(s.m, s.n)
		matMulRowsRef(ref.data, a.data, b.data, s.k, s.n, 0, s.m)
		for _, be := range backends {
			got := MatMulWith(be, a, b)
			if diff := bitsDiff(got, ref); diff != "" {
				t.Errorf("%s MatMul != reference (m=%d k=%d n=%d): %s", be.Name(), s.m, s.k, s.n, diff)
			}
		}
	}
}

// convGeometries are the fused-GEMM geometry corner cases: padding,
// stride 2, 1×1 kernels, tiny spatial dims, and channel counts that
// leave partial panels.
var convGeometries = []struct{ n, c, h, w, k, stride, pad, outC int }{
	{1, 1, 5, 5, 3, 1, 1, 4},
	{2, 3, 8, 8, 3, 1, 1, 8},
	{2, 5, 7, 9, 3, 2, 1, 6},
	{1, 7, 6, 6, 1, 1, 0, 5},
	{3, 4, 11, 5, 5, 2, 2, 7},
	{1, 2, 3, 3, 3, 1, 1, 3}, // output smaller than one panel
}

// TestFusedConvGemmMatchesMaterialized pins the fused conv GEMMs
// (forward and weight-gradient) bit-for-bit to materialize-then-GEMM on
// every geometry, for both backends and with specials in the input.
func TestFusedConvGemmMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	backends := []Backend{Serial{}, NewParallel(3)}
	for gi, cse := range convGeometries {
		x := New(cse.n, cse.c, cse.h, cse.w)
		fillAdversarial(rng, x, gi)
		oh := ConvOutSize(cse.h, cse.k, cse.stride, cse.pad)
		ow := ConvOutSize(cse.w, cse.k, cse.stride, cse.pad)
		K := cse.c * cse.k * cse.k
		S := cse.n * oh * ow
		w := Rand(rng, -1, 1, cse.outC, K)
		grad := Rand(rng, -1, 1, cse.outC, S)
		cols := Im2ColWith(Serial{}, x, cse.k, cse.k, cse.stride, cse.pad)

		wantFwd := New(cse.outC, S)
		matMulRowsRef(wantFwd.data, w.data, cols.data, K, S, 0, cse.outC)
		wantDW := New(cse.outC, K)
		matMulTBRowsRef(wantDW.data, grad.data, cols.data, S, K, 0, cse.outC)

		for _, be := range backends {
			fwd := New(cse.outC, S)
			be.ConvForwardInto(fwd, w, x, cse.k, cse.k, cse.stride, cse.pad)
			if diff := bitsDiff(fwd, wantFwd); diff != "" {
				t.Errorf("%s ConvForwardInto != materialized (case %d): %s", be.Name(), gi, diff)
			}
			dw := New(cse.outC, K)
			be.ConvGradWeightInto(dw, grad, x, cse.k, cse.k, cse.stride, cse.pad)
			if diff := bitsDiff(dw, wantDW); diff != "" {
				t.Errorf("%s ConvGradWeightInto != materialized (case %d): %s", be.Name(), gi, diff)
			}
		}
	}
}

// TestFusedPackMatchesMaterializedPack checks the layout invariant the
// fusion rests on: packing the virtual column matrix straight from the
// input produces byte-identical panels to materializing im2col output
// and packing that, in both the forward and transposed layouts.
func TestFusedPackMatchesMaterializedPack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for gi, cse := range convGeometries {
		x := New(cse.n, cse.c, cse.h, cse.w)
		fillAdversarial(rng, x, gi+1)
		g := convGeom{n: cse.n, c: cse.c, h: cse.h, w: cse.w,
			oh: ConvOutSize(cse.h, cse.k, cse.stride, cse.pad),
			ow: ConvOutSize(cse.w, cse.k, cse.stride, cse.pad),
			kh: cse.k, kw: cse.k, stride: cse.stride, pad: cse.pad}
		K, S := g.colRows(), g.colCols()
		cols := Im2ColWith(Serial{}, x, cse.k, cse.k, cse.stride, cse.pad)

		want := make([]float32, packedBLen(K, S))
		packBPanels(want, cols.data, K, S, 0, panelsOf(S))
		got := make([]float32, packedBLen(K, S))
		im2colPackPanels(got, x.data, g, 0, panelsOf(S))
		if diff := bitsDiff(FromSlice(got, len(got)), FromSlice(want, len(want))); diff != "" {
			t.Errorf("im2colPackPanels != packBPanels∘im2col (case %d): %s", gi, diff)
		}

		wantT := make([]float32, packedBLen(S, K))
		packBPanelsTB(wantT, cols.data, S, K, 0, panelsOf(K))
		gotT := make([]float32, packedBLen(S, K))
		im2colPackPanelsT(gotT, x.data, g, 0, panelsOf(K))
		if diff := bitsDiff(FromSlice(gotT, len(gotT)), FromSlice(wantT, len(wantT))); diff != "" {
			t.Errorf("im2colPackPanelsT != packBPanelsTB∘im2col (case %d): %s", gi, diff)
		}
		// And the scalar oracle agrees element by element.
		for p := 0; p < K; p++ {
			for j := 0; j < S; j++ {
				if math.Float32bits(g.at(x.data, p, j)) != math.Float32bits(cols.data[p*S+j]) {
					t.Fatalf("convGeom.at(%d,%d) disagrees with im2col (case %d)", p, j, gi)
				}
			}
		}
	}
}
