// SSE microkernel for the packed GEMM engine (see gemm.go). Baseline
// SSE only — every amd64 target has it, so no feature detection.
//
// Computes a 4x8 output tile:
//
//	out[r][c] (+)= sum over p of ap[p*4+r] * bp[p*8+c]
//
// Register plan: X0..X7 hold the accumulator tile (two 4-wide vectors
// per output row), X8/X9 the current B panel row, X10/X11 broadcast and
// product temporaries. Each vector lane owns one output column, so the
// per-element operation sequence — multiply then add, terms in
// ascending-p order — is exactly the scalar reference sequence and the
// tile is bit-identical to microGeneric. MULPS takes the broadcast A
// value as destination and ADDPS the accumulator, matching the operand
// roles of the compiled Go kernels so NaN propagation agrees too.

#include "textflag.h"

// func microKernelSSE(out *float32, ldo int, ap, bp *float32, pc int, accumulate int)
TEXT ·microKernelSSE(SB), NOSPLIT, $0-48
	MOVQ out+0(FP), DI
	MOVQ ldo+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ pc+32(FP), CX
	MOVQ accumulate+40(FP), DX

	SHLQ $2, SI              // row stride in bytes
	LEAQ (DI)(SI*1), R8      // out row 1
	LEAQ (R8)(SI*1), R9      // out row 2
	LEAQ (R9)(SI*1), R10     // out row 3

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ DX, DX
	JZ    ploop
	MOVUPS (DI), X0          // resume: load the spilled tile
	MOVUPS 16(DI), X1
	MOVUPS (R8), X2
	MOVUPS 16(R8), X3
	MOVUPS (R9), X4
	MOVUPS 16(R9), X5
	MOVUPS (R10), X6
	MOVUPS 16(R10), X7

ploop:
	MOVUPS (BX), X8          // b[p][0:4]
	MOVUPS 16(BX), X9        // b[p][4:8]

	MOVSS  (AX), X10         // a[p][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X0
	ADDPS  X11, X1

	MOVSS  4(AX), X10        // a[p][1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X2
	ADDPS  X11, X3

	MOVSS  8(AX), X10        // a[p][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X4
	ADDPS  X11, X5

	MOVSS  12(AX), X10       // a[p][3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X6
	ADDPS  X11, X7

	ADDQ $16, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  ploop

	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, (R8)
	MOVUPS X3, 16(R8)
	MOVUPS X4, (R9)
	MOVUPS X5, 16(R9)
	MOVUPS X6, (R10)
	MOVUPS X7, 16(R10)
	RET
