// Package bench is the repository's single registry of compute
// benchmarks: kernel sweeps (the GEMM family, the fused conv GEMMs, and
// the skinny batched attention GEMMs), layer-level conv and attention
// forward/backward, and the pipelined engine step for both the conv and
// transformer workloads. Both
// the root benchmark harness (bench_test.go via go test -bench) and
// cmd/pipebd-bench (the JSON baseline writer) consume these definitions,
// so a benchmark exists exactly once and the two entry points can never
// drift apart.
//
// Backends are constructed per call: the parallel backend gets a
// dedicated pool sized by the GOMAXPROCS in effect at construction, so a
// harness that sweeps GOMAXPROCS values (pipebd-bench -procs) measures
// pools of the right width instead of a stale shared pool.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/nn"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
	"pipebd/internal/tensor"
)

// Case is one benchmark: Run executes the measured operation b.N times
// (using the timer controls where per-iteration setup must be excluded).
// Bytes, when non-zero, is the per-operation data volume for throughput
// reporting (the GEMM convention: 2·m·k·n·4); harnesses apply it via
// b.SetBytes before calling Run.
type Case struct {
	Name    string
	Backend string
	Bytes   int64
	Run     func(b *testing.B)
}

// parallelPools caches one parallel backend per pool width: Pool workers
// live for the life of the process (there is no Stop), so constructing a
// fresh backend per registry call would leak a pool per call. One cached
// pool per distinct GOMAXPROCS value bounds the goroutine count no
// matter how often the registry or a -procs sweep re-enumerates cases.
var (
	parallelMu    sync.Mutex
	parallelPools = map[int]*tensor.Parallel{}
)

func backends() []tensor.Backend {
	procs := runtime.GOMAXPROCS(0)
	parallelMu.Lock()
	defer parallelMu.Unlock()
	p, ok := parallelPools[procs]
	if !ok {
		p = tensor.NewParallel(procs)
		parallelPools[procs] = p
	}
	return []tensor.Backend{tensor.Serial{}, p}
}

// Kernel returns the GEMM-family kernel sweep: square MatMul at several
// sizes plus the transposed variants that dominate Linear and Conv2d
// backward passes, per backend.
func Kernel(quick bool) []Case {
	matmulSizes := []int{128, 256, 512}
	taSize, tbSize := 256, 256
	if quick {
		matmulSizes = []int{32}
		taSize, tbSize = 32, 32
	}
	var cases []Case
	rng := rand.New(rand.NewSource(1))
	for _, size := range matmulSizes {
		x := tensor.Rand(rng, -1, 1, size, size)
		y := tensor.Rand(rng, -1, 1, size, size)
		dst := tensor.New(size, size)
		for _, be := range backends() {
			be := be
			cases = append(cases, Case{
				Name:    fmt.Sprintf("MatMul/%dx%dx%d", size, size, size),
				Backend: be.Name(),
				Bytes:   int64(2 * size * size * size * 4),
				Run: func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						be.MatMulInto(dst, x, y)
					}
				},
			})
		}
	}
	ta := tensor.Rand(rng, -1, 1, taSize, taSize)
	tb := tensor.Rand(rng, -1, 1, taSize, taSize)
	tdst := tensor.New(taSize, taSize)
	for _, be := range backends() {
		be := be
		cases = append(cases, Case{
			Name:    fmt.Sprintf("MatMulTA/%dx%dx%d", taSize, taSize, taSize),
			Backend: be.Name(),
			Bytes:   int64(2 * taSize * taSize * taSize * 4),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be.MatMulTAInto(tdst, ta, tb)
				}
			},
		})
		cases = append(cases, Case{
			Name:    fmt.Sprintf("MatMulTB/%dx%dx%d", tbSize, tbSize, tbSize),
			Backend: be.Name(),
			Bytes:   int64(2 * tbSize * tbSize * tbSize * 4),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be.MatMulTBInto(tdst, ta, tb)
				}
			},
		})
	}
	imN, imC, imHW := 8, 32, 28
	if quick {
		imN, imC, imHW = 2, 4, 8
	}
	ix := tensor.Rand(rand.New(rand.NewSource(3)), -1, 1, imN, imC, imHW, imHW)
	iout := tensor.New(imC*3*3, imN*imHW*imHW)
	for _, be := range backends() {
		be := be
		cases = append(cases, Case{
			Name:    fmt.Sprintf("Im2Col/%dx%dx%dx%d", imN, imC, imHW, imHW),
			Backend: be.Name(),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be.Im2ColInto(iout, ix, 3, 3, 1, 1)
				}
			},
		})
	}
	return cases
}

// Conv returns the layer-level convolution benches: a conv3x3 forward
// (fused im2col GEMM + bias) and a full forward+backward training step,
// per backend.
func Conv(quick bool) []Case {
	convBatch, convC, convHW := 8, 16, 28
	if quick {
		convBatch, convC, convHW = 2, 4, 8
	}
	var cases []Case
	for _, be := range backends() {
		be := be
		conv := nn.NewConv2d(rand.New(rand.NewSource(2)), convC, convC, 3, 1, 1, true)
		conv.SetBackend(be)
		x := tensor.Rand(rand.New(rand.NewSource(3)), -1, 1, convBatch, convC, convHW, convHW)
		grad := tensor.Rand(rand.New(rand.NewSource(4)), -1, 1, convBatch, convC, convHW, convHW)
		cases = append(cases, Case{
			Name:    fmt.Sprintf("ConvForward/%dx%dx%dx%d", convBatch, convC, convHW, convHW),
			Backend: be.Name(),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					conv.Forward(x, false)
				}
			},
		})
		cases = append(cases, Case{
			Name:    fmt.Sprintf("ConvTrainStep/%dx%dx%dx%d", convBatch, convC, convHW, convHW),
			Backend: be.Name(),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					conv.Forward(x, true)
					conv.Backward(grad)
				}
			},
		})
	}
	return cases
}

// Pipeline returns the engine-level bench: one full hybrid-plan
// pipelined training pass over the tiny workbench, per backend.
func Pipeline(quick bool) []Case {
	stepBatches, stepBatch := 4, 16
	if quick {
		stepBatches, stepBatch = 2, 8
	}
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(4)), stepBatches*stepBatch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(stepBatch)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	var cases []Case
	for _, be := range backends() {
		be := be
		cases = append(cases, Case{
			Name:    fmt.Sprintf("PipelineStep/hybrid/%dsteps-batch%d", stepBatches, stepBatch),
			Backend: be.Name(),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// Workbench construction is setup, not the measured
					// step (the PR2–PR4 baselines excluded it too).
					b.StopTimer()
					w := distill.NewTinyWorkbench(tiny)
					b.StartTimer()
					engine.RunPipelined(w, batches, engine.Config{Plan: plan, DPU: true,
						LR: 0.05, Momentum: 0.9, Backend: be})
				}
			},
		})
	}
	return cases
}

// Transformer returns the transformer-workload benches. The batched
// attention kernels are the skinny shapes the tentpole introduced —
// g = batch·heads instances of m ≈ seq-len rows each, which the old
// per-instance m≥8 dispatch heuristic permanently stranded on the
// reference path — plus the full multi-head-attention training step and
// the blockwise transformer pipeline step over token batches.
func Transformer(quick bool) []Case {
	g, l, dh := 64, 16, 16
	attnBatch, dim, heads := 16, 64, 4
	if quick {
		g, l, dh = 8, 6, 4
		attnBatch, dim, heads = 2, 8, 2
	}
	rng := rand.New(rand.NewSource(6))
	q := tensor.Rand(rng, -1, 1, g, l, dh)
	k := tensor.Rand(rng, -1, 1, g, l, dh)
	scores := tensor.New(g, l, l)
	probs := tensor.Rand(rng, 0, 1, g, l, l)
	v := tensor.Rand(rng, -1, 1, g, l, dh)
	ctx := tensor.New(g, l, dh)
	var cases []Case
	for _, be := range backends() {
		be := be
		cases = append(cases, Case{
			Name:    fmt.Sprintf("AttnScoresBatch/%dx%dx%d", g, l, dh),
			Backend: be.Name(),
			Bytes:   int64(2 * g * l * l * dh * 4),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be.MatMulTBBatchInto(scores, q, k)
				}
			},
		})
		cases = append(cases, Case{
			Name:    fmt.Sprintf("AttnContextBatch/%dx%dx%dx%d", g, l, l, dh),
			Backend: be.Name(),
			Bytes:   int64(2 * g * l * l * dh * 4),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be.MatMulBatchInto(ctx, probs, v)
				}
			},
		})
		mha := nn.NewMultiHeadAttention(rand.New(rand.NewSource(7)), dim, heads)
		mha.SetBackend(be)
		x := tensor.Rand(rand.New(rand.NewSource(8)), -1, 1, attnBatch, l, dim)
		grad := tensor.Rand(rand.New(rand.NewSource(9)), -1, 1, attnBatch, l, dim)
		cases = append(cases, Case{
			Name:    fmt.Sprintf("AttentionTrainStep/%dx%dx%d-heads%d", attnBatch, l, dim, heads),
			Backend: be.Name(),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mha.Forward(x, true)
					mha.Backward(grad)
				}
			},
		})
	}
	tcfg := distill.DefaultTransformerConfig()
	steps, stepBatch := 4, 16
	if quick {
		steps, stepBatch = 2, 8
	}
	tokens := dataset.NewTokens(rand.New(rand.NewSource(10)), steps*stepBatch,
		tcfg.SeqLen, tcfg.Vocab, tcfg.Classes)
	batches := tokens.Batches(stepBatch)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	for _, be := range backends() {
		be := be
		cases = append(cases, Case{
			Name:    fmt.Sprintf("TransformerPipelineStep/hybrid/%dsteps-batch%d", steps, stepBatch),
			Backend: be.Name(),
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w := distill.NewTransformerWorkbench(tcfg)
					b.StartTimer()
					engine.RunPipelined(w, batches, engine.Config{Plan: plan, DPU: true,
						LR: 0.05, Momentum: 0.9, Backend: be})
				}
			},
		})
	}
	return cases
}

// Recovery returns the fault-recovery latency pair: the same tiny ring
// run over a loopback cluster with one identical mid-run link break —
// once as a transient flap absorbed by the resumable layer (reconnect
// plus frame replay, no restart), once as a kill that forces a global
// restart from the cut (every device rewound and replayed). The delta
// between the two is the wall-clock the absorption tier saves per fault.
func Recovery(quick bool) []Case {
	steps, batch := 4, 8
	if quick {
		steps, batch = 3, 4
	}
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(5)), steps*batch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(batch)
	plan := sched.Plan{Name: "tr", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2, 3}},
	}}
	mk := func(name string, action transport.Action, retry wire.RetrySpec, maxRestarts int) Case {
		return Case{
			Name:    fmt.Sprintf("RecoveryLatency/%s/%dsteps-batch%d", name, steps, batch),
			Backend: "serial",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					inner := transport.NewLoopback()
					chaos := transport.NewChaos(inner, transport.Fault{
						Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
							Kind: wire.KindPeerInput, Step: 1, Count: 1},
						Action: action,
					})
					workers := make([]*cluster.Worker, 2)
					addrs := make([]string, 2)
					for j := range workers {
						lis, err := inner.Listen("")
						if err != nil {
							b.Fatalf("listen: %v", err)
						}
						workers[j] = cluster.NewWorker(lis, cluster.WorkerConfig{
							Sessions: 1, Rejoin: true, Dial: chaos})
						addrs[j] = workers[j].Addr()
						go workers[j].Serve()
					}
					w := distill.NewTinyWorkbench(tiny)
					b.StartTimer()
					_, err := cluster.Run(inner, addrs, w, batches, cluster.Config{
						Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9,
						Topology: "ring", Spec: cluster.TinySpec(tiny),
						Retry: retry, MaxRestarts: maxRestarts,
						JoinTimeout: 10 * time.Second,
					})
					b.StopTimer()
					if err != nil {
						b.Fatalf("ring run with injected %v failed: %v", action, err)
					}
					for _, wk := range workers {
						wk.Close()
					}
					b.StartTimer()
				}
			},
		}
	}
	return []Case{
		// A short backoff keeps the absorb case honest: the measured time
		// is reconnect + replay, not a sleeping retry loop.
		mk("absorb", transport.ActFlap,
			wire.RetrySpec{BackoffMillis: 1, BudgetMillis: 2000, AckEvery: 2}, 0),
		mk("global-cut", transport.ActKill, wire.RetrySpec{}, 1),
	}
}

// Trace returns the observability overhead benches: the Begin/End span
// pair that PR 7 threads through the engine and cluster hot paths. The
// disabled case is the every-run cost (tracing off by default) and must
// stay near-free — one nil check plus one atomic load, no allocation, no
// clock read; the enabled case bounds what opting into -trace-out adds,
// including the periodic drain a step-boundary flush performs.
func Trace() []Case {
	mk := func(name string, enabled bool) Case {
		tracer := obs.NewTracer(enabled)
		track := tracer.NewTrack("dev0")
		return Case{
			Name:    name,
			Backend: "n/a",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					track.Begin(sim.CatStudentFwd, "student_fwd").End()
					if i&1023 == 1023 {
						track.Drain()
					}
				}
				track.Drain()
			},
		}
	}
	return []Case{
		mk("TraceOverhead/disabled", false),
		mk("TraceOverhead/enabled", true),
	}
}

// All returns every registry benchmark: kernels, conv layers, the
// transformer workload, pipeline, trace overhead.
func All(quick bool) []Case {
	var cases []Case
	cases = append(cases, Kernel(quick)...)
	cases = append(cases, Conv(quick)...)
	cases = append(cases, Transformer(quick)...)
	cases = append(cases, Pipeline(quick)...)
	cases = append(cases, Recovery(quick)...)
	cases = append(cases, Trace()...)
	return cases
}
