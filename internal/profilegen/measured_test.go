package profilegen

import "testing"

// TestFromMeasuredProfileSurface: the measured-cost adapter must present
// exactly the observed per-block totals through the Profile interface the
// planner strategies consume — StepTime at split 1 is the measured cost,
// Update is zero (already folded into the totals upstream), and MaxSplit
// is 1 so no strategy can propose a split the measurement cannot price.
func TestFromMeasuredProfileSurface(t *testing.T) {
	costs := []float64{400, 150, 150, 100}
	p := FromMeasured("live", costs)
	if p.NumBlocks() != len(costs) {
		t.Fatalf("NumBlocks = %d, want %d", p.NumBlocks(), len(costs))
	}
	if p.MaxSplit != 1 {
		t.Fatalf("MaxSplit = %d, want 1 (measurements describe the unsplit placement)", p.MaxSplit)
	}
	if p.Workload != "live" {
		t.Fatalf("Workload = %q, want %q", p.Workload, "live")
	}
	for b, c := range costs {
		if got := p.StepTime(b, 1); got != c {
			t.Fatalf("StepTime(%d, 1) = %v, want measured %v", b, got, c)
		}
		if p.Update[b] != 0 {
			t.Fatalf("Update[%d] = %v, want 0 (folded into the measured total)", b, p.Update[b])
		}
	}
	if got := p.LocalBatch(1); got != 1 {
		t.Fatalf("LocalBatch(1) = %d, want 1", got)
	}
}
