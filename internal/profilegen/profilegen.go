// Package profilegen implements the paper's pre-training profiling step:
// before choosing a schedule, Pipe-BD "runs 100 steps of each block with
// feasible batch sizes to obtain execution times under the current
// environment" (§V-B). The automatic hybrid distribution planner consumes
// only this measured table, never the cost model directly, mirroring the
// real system's separation between measurement and planning.
package profilegen

import (
	"fmt"

	"pipebd/internal/cost"
	"pipebd/internal/hw"
	"pipebd/internal/model"
)

// Profile is the measured per-block execution-time table for one
// workload/GPU/global-batch configuration. All two-dimensional slices are
// indexed [block][split-1], where split is the number of devices sharing
// the block (local batch = GlobalBatch/split).
type Profile struct {
	Workload    string
	GPU         hw.GPU
	GlobalBatch int
	MaxSplit    int

	TeacherFwd [][]float64
	StudentFwd [][]float64
	StudentBwd [][]float64
	// Update is the per-block optimizer step time (batch independent).
	Update []float64

	// TeacherOutBytesPerSample is each teacher block's output activation
	// size for one sample (relay transfer sizing).
	TeacherOutBytesPerSample []int64
	// TeacherInBytesPerSample is each teacher block's input activation
	// size for one sample.
	TeacherInBytesPerSample []int64
	// StudentParamBytes is each student block's parameter size
	// (all-reduce sizing).
	StudentParamBytes []int64

	// TeacherMem / StudentMem give per-block device memory at each split
	// (teacher inference, student training), for feasibility checks.
	TeacherMem [][]int64
	StudentMem [][]int64
}

// NumBlocks returns the profiled block count.
func (p Profile) NumBlocks() int { return len(p.TeacherFwd) }

// LocalBatch returns the per-device batch when split devices share a block.
func (p Profile) LocalBatch(split int) int {
	if split < 1 || split > p.MaxSplit {
		panic(fmt.Sprintf("profilegen: split %d out of range [1,%d]", split, p.MaxSplit))
	}
	return p.GlobalBatch / split
}

// StepTime returns the full per-step compute time of one block at the
// given split: teacher forward plus student forward and backward.
func (p Profile) StepTime(block, split int) float64 {
	return p.TeacherFwd[block][split-1] + p.StudentFwd[block][split-1] + p.StudentBwd[block][split-1]
}

// Measure profiles every block of the workload on the given GPU at every
// feasible split of the global batch (1..maxSplit devices), running the
// configured number of timing steps per measurement and averaging. The
// analytic device model is deterministic, so steps > 1 reproduces the
// paper's interface without changing the result; it keeps the call shape
// identical to a real profiler's.
func Measure(w model.Workload, gpu hw.GPU, globalBatch, maxSplit, steps int) Profile {
	if globalBatch <= 0 || maxSplit <= 0 {
		panic("profilegen: batch and maxSplit must be positive")
	}
	if steps <= 0 {
		steps = 100 // the paper's default
	}
	nb := w.NumBlocks()
	p := Profile{
		Workload:    w.Name,
		GPU:         gpu,
		GlobalBatch: globalBatch,
		MaxSplit:    maxSplit,

		TeacherFwd: make([][]float64, nb),
		StudentFwd: make([][]float64, nb),
		StudentBwd: make([][]float64, nb),
		Update:     make([]float64, nb),

		TeacherOutBytesPerSample: make([]int64, nb),
		TeacherInBytesPerSample:  make([]int64, nb),
		StudentParamBytes:        make([]int64, nb),

		TeacherMem: make([][]int64, nb),
		StudentMem: make([][]int64, nb),
	}
	for b := 0; b < nb; b++ {
		tb := w.Teacher.Net.Blocks[b]
		sb := w.Student.Net.Blocks[b]
		p.TeacherFwd[b] = make([]float64, maxSplit)
		p.StudentFwd[b] = make([]float64, maxSplit)
		p.StudentBwd[b] = make([]float64, maxSplit)
		p.TeacherMem[b] = make([]int64, maxSplit)
		p.StudentMem[b] = make([]int64, maxSplit)
		for split := 1; split <= maxSplit; split++ {
			lb := globalBatch / split
			if lb == 0 {
				lb = 1
			}
			p.TeacherFwd[b][split-1] = timeAvg(steps, func() float64 { return cost.BlockFwdTime(gpu, tb, lb) })
			p.StudentFwd[b][split-1] = timeAvg(steps, func() float64 { return cost.BlockFwdTime(gpu, sb, lb) })
			p.StudentBwd[b][split-1] = timeAvg(steps, func() float64 { return cost.BlockBwdTime(gpu, sb, lb) })
			p.TeacherMem[b][split-1] = cost.TeacherBlockMemory(tb, lb)
			p.StudentMem[b][split-1] = cost.StudentBlockMemory(sb, lb) + cost.RelayBufferMemory(tb, lb)
		}
		p.Update[b] = cost.UpdateTime(gpu, sb)
		p.TeacherOutBytesPerSample[b] = tb.OutBytes(1)
		p.TeacherInBytesPerSample[b] = tb.InBytes(1)
		p.StudentParamBytes[b] = sb.ParamBytes()
	}
	return p
}

// timeAvg mimics a repeated timing measurement: it evaluates the probe
// the given number of times and returns the mean. Because the analytic
// device model is deterministic, every sample is identical, so the mean
// is returned exactly (a naive sum/n would drift in the last ulp and
// break bit-level reproducibility across different step counts).
func timeAvg(steps int, probe func() float64) float64 {
	first := probe()
	for i := 1; i < steps; i++ {
		if v := probe(); v != first {
			// Unreachable with the analytic model; guard against a
			// future stochastic model silently biasing the mean.
			sum := first + v
			for j := i + 1; j < steps; j++ {
				sum += probe()
			}
			return sum / float64(steps)
		}
	}
	return first
}

// FromMeasured builds a degenerate single-split Profile from per-block
// step times measured on live devices (obs.StepAggregator block costs, in
// the same unit the caller plans in). It is the runtime repartitioner's
// adapter between measurement and planning: the planner strategies
// consume a Profile through StepTime/Update only, so a table holding the
// observed totals — component attribution collapsed into TeacherFwd,
// Update zero — re-derives the plan from what the run actually measured
// instead of the analytic model. MaxSplit is 1: measurements describe the
// placement that produced them, and the bit-identity contract restricts
// runtime re-plans to unsplit groups anyway.
func FromMeasured(workload string, blockCost []float64) Profile {
	nb := len(blockCost)
	p := Profile{
		Workload:    workload,
		GlobalBatch: 1,
		MaxSplit:    1,

		TeacherFwd: make([][]float64, nb),
		StudentFwd: make([][]float64, nb),
		StudentBwd: make([][]float64, nb),
		Update:     make([]float64, nb),

		TeacherOutBytesPerSample: make([]int64, nb),
		TeacherInBytesPerSample:  make([]int64, nb),
		StudentParamBytes:        make([]int64, nb),
		TeacherMem:               make([][]int64, nb),
		StudentMem:               make([][]int64, nb),
	}
	for b, c := range blockCost {
		p.TeacherFwd[b] = []float64{c}
		p.StudentFwd[b] = []float64{0}
		p.StudentBwd[b] = []float64{0}
		p.TeacherMem[b] = []int64{0}
		p.StudentMem[b] = []int64{0}
	}
	return p
}
