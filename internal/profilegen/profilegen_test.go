package profilegen

import (
	"testing"

	"pipebd/internal/hw"
	"pipebd/internal/model"
)

func measureNAS(t *testing.T) Profile {
	t.Helper()
	return Measure(model.NAS(false), hw.RTXA6000(), 256, 4, 10)
}

func TestMeasureShape(t *testing.T) {
	p := measureNAS(t)
	if p.NumBlocks() != 6 {
		t.Fatalf("blocks = %d, want 6", p.NumBlocks())
	}
	for b := 0; b < p.NumBlocks(); b++ {
		if len(p.TeacherFwd[b]) != 4 || len(p.StudentFwd[b]) != 4 || len(p.StudentBwd[b]) != 4 {
			t.Fatalf("block %d: wrong split dimension", b)
		}
		for s := 0; s < 4; s++ {
			if p.TeacherFwd[b][s] <= 0 || p.StudentFwd[b][s] <= 0 || p.StudentBwd[b][s] <= 0 {
				t.Fatalf("block %d split %d: non-positive time", b, s)
			}
			if p.TeacherMem[b][s] <= 0 || p.StudentMem[b][s] <= 0 {
				t.Fatalf("block %d split %d: non-positive memory", b, s)
			}
		}
		if p.Update[b] <= 0 || p.StudentParamBytes[b] <= 0 {
			t.Fatalf("block %d: missing update/params", b)
		}
		if p.TeacherOutBytesPerSample[b] <= 0 || p.TeacherInBytesPerSample[b] <= 0 {
			t.Fatalf("block %d: missing activation sizes", b)
		}
	}
}

func TestSplitShrinksPerStepTime(t *testing.T) {
	p := measureNAS(t)
	for b := 0; b < p.NumBlocks(); b++ {
		for s := 1; s < 4; s++ {
			if p.StepTime(b, s+1) >= p.StepTime(b, s) {
				t.Fatalf("block %d: step time did not shrink from split %d to %d", b, s, s+1)
			}
		}
	}
}

func TestSplitIsSubLinear(t *testing.T) {
	// Halving the batch must not halve the time (launch overhead and
	// occupancy loss) — the cost AHD weighs against balance gains.
	p := measureNAS(t)
	for b := 0; b < p.NumBlocks(); b++ {
		if p.StepTime(b, 2) <= p.StepTime(b, 1)/2 {
			t.Fatalf("block %d: splitting is implausibly free", b)
		}
	}
}

func TestLocalBatch(t *testing.T) {
	p := measureNAS(t)
	if p.LocalBatch(1) != 256 || p.LocalBatch(4) != 64 {
		t.Fatal("LocalBatch arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range split")
		}
	}()
	p.LocalBatch(5)
}

func TestMemoryShrinksWithSplit(t *testing.T) {
	p := measureNAS(t)
	for b := 0; b < p.NumBlocks(); b++ {
		if p.StudentMem[b][3] >= p.StudentMem[b][0] {
			t.Fatalf("block %d: student memory should shrink with split", b)
		}
	}
}

func TestStepsDefaultAndDeterminism(t *testing.T) {
	w := model.NAS(false)
	a := Measure(w, hw.RTXA6000(), 256, 4, 0) // 0 -> default 100 steps
	b := Measure(w, hw.RTXA6000(), 256, 4, 7)
	// The analytic model is deterministic: averaging over any number of
	// steps yields identical values.
	for blk := 0; blk < a.NumBlocks(); blk++ {
		for s := 0; s < 4; s++ {
			if a.TeacherFwd[blk][s] != b.TeacherFwd[blk][s] {
				t.Fatalf("profiling not deterministic at block %d split %d", blk, s)
			}
		}
	}
}

func TestMeasurePanicsOnBadArgs(t *testing.T) {
	w := model.NAS(false)
	for name, f := range map[string]func(){
		"zero batch": func() { Measure(w, hw.RTXA6000(), 0, 4, 10) },
		"zero split": func() { Measure(w, hw.RTXA6000(), 256, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestImageNetBlockZeroDominatesProfile(t *testing.T) {
	// The profiled table must reflect the Fig. 5 observation that
	// block 0's execution time is the longest among the six blocks.
	p := Measure(model.NAS(true), hw.RTXA6000(), 256, 4, 10)
	b0 := p.StepTime(0, 1)
	for b := 1; b < p.NumBlocks(); b++ {
		if p.StepTime(b, 1) >= b0 {
			t.Fatalf("block %d step time %v >= block 0's %v", b, p.StepTime(b, 1), b0)
		}
	}
}
