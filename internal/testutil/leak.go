// Package testutil holds small helpers shared across the repository's
// test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and, at cleanup time (after
// the test's own cleanups — workers closed, runs returned, servers shut
// down), insists the count returns to the baseline. It is the
// counted-goroutine assertion guarding fail/teardown paths: a peer dying
// mid-gather (or a debug server left running) must not strand device
// loops, outbox writers, readers, or monitor goroutines.
func LeakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d at start, %d after cleanup\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
