package trace

import (
	"strings"
	"testing"

	"pipebd/internal/sim"
)

func recordedTrack() *sim.Track {
	tr := sim.NewTrack("gpu0", true)
	tr.Exec(0, 10e-3, sim.CatTeacherFwd, "T0")
	tr.Exec(0, 20e-3, sim.CatStudentFwd, "S0")
	tr.Exec(0, 5e-3, sim.CatUpdate, "U")
	return tr
}

func TestGanttRendersRowsAndLegend(t *testing.T) {
	tr := recordedTrack()
	out := Gantt([]*sim.Track{tr}, 0, 35e-3, 70)
	if !strings.Contains(out, "gpu0") {
		t.Fatal("missing track name")
	}
	if !strings.Contains(out, "legend:") {
		t.Fatal("missing legend")
	}
	// Fill characters must appear proportionally: S spans 2x T.
	countT := strings.Count(out, "T")
	countS := strings.Count(out, "S")
	if countS <= countT {
		t.Fatalf("student span (%d) should exceed teacher span (%d)", countS, countT)
	}
	if !strings.Contains(out, "T0") || !strings.Contains(out, "S0") {
		t.Fatal("labels not overlaid")
	}
}

func TestGanttClipsWindow(t *testing.T) {
	tr := recordedTrack()
	out := Gantt([]*sim.Track{tr}, 12e-3, 30e-3, 60)
	// Teacher interval [0,10ms) is outside the window.
	if strings.Contains(out, "T0") {
		t.Fatal("teacher interval should be clipped out")
	}
}

func TestGanttEmptyWindow(t *testing.T) {
	out := Gantt(nil, 5, 5, 40)
	if !strings.Contains(out, "empty") {
		t.Fatalf("expected empty-window notice, got %q", out)
	}
}

func TestGanttIdleDots(t *testing.T) {
	tr := sim.NewTrack("g", true)
	tr.Exec(10e-3, 1e-3, sim.CatLoad, "DL") // idle before 10ms
	out := Gantt([]*sim.Track{tr}, 0, 11e-3, 44)
	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "g ") {
			row = line
		}
	}
	if !strings.Contains(row, "....") {
		t.Fatalf("expected idle dots in %q", row)
	}
}

func TestWindow(t *testing.T) {
	tr := recordedTrack()
	t0, t1 := Window([]*sim.Track{tr}, 0.25, 0.5)
	if t0 <= 0 || t1 <= t0 {
		t.Fatalf("bad window [%v, %v]", t0, t1)
	}
	if t1 > tr.FreeAt() {
		t.Fatal("window should stay within the track span")
	}
}

func TestMinWidth(t *testing.T) {
	tr := recordedTrack()
	out := Gantt([]*sim.Track{tr}, 0, 35e-3, 1)
	if len(out) == 0 {
		t.Fatal("tiny width must still render")
	}
}
