// Package trace renders simulator tracks as ASCII Gantt charts — the
// textual equivalent of the paper's schedule illustrations (Fig. 3 and
// Fig. 5b/5c). Each track becomes one row; busy intervals are drawn with
// a per-category fill character and overlaid with their labels where
// space allows.
package trace

import (
	"fmt"
	"strings"

	"pipebd/internal/sim"
)

// fillChar maps categories to their fill characters.
func fillChar(c sim.Category) byte {
	switch c {
	case sim.CatLoad:
		return 'L'
	case sim.CatTeacherFwd:
		return 'T'
	case sim.CatStudentFwd:
		return 'S'
	case sim.CatStudentBwd:
		return 's'
	case sim.CatUpdate:
		return 'U'
	case sim.CatComm:
		return 'c'
	case sim.CatAllReduce:
		return 'A'
	}
	return '#'
}

// Gantt renders the given tracks over the time window [t0, t1] using the
// given character width. Tracks must have been recorded (sim.NewTrack
// with record=true). The output includes a time axis and a legend.
func Gantt(tracks []*sim.Track, t0, t1 float64, width int) string {
	if width < 20 {
		width = 20
	}
	if t1 <= t0 {
		return "trace: empty time window\n"
	}
	scale := float64(width) / (t1 - t0)
	nameW := 0
	for _, tr := range tracks {
		if len(tr.Name) > nameW {
			nameW = len(tr.Name)
		}
	}

	var b strings.Builder
	// Time axis.
	fmt.Fprintf(&b, "%*s  %s\n", nameW, "", axis(t0, t1, width))
	for _, tr := range tracks {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range tr.Intervals() {
			if iv.End <= t0 || iv.Start >= t1 {
				continue
			}
			from := int((sim.Max(iv.Start, t0) - t0) * scale)
			to := int((min(iv.End, t1) - t0) * scale)
			if to <= from {
				to = from + 1
			}
			if to > width {
				to = width
			}
			fc := fillChar(iv.Cat)
			for i := from; i < to; i++ {
				row[i] = fc
			}
			// Overlay the label when it fits inside the span.
			if iv.Label != "" && to-from >= len(iv.Label)+1 {
				copy(row[from:], iv.Label)
			}
		}
		fmt.Fprintf(&b, "%*s  %s\n", nameW, tr.Name, string(row))
	}
	b.WriteString(legend())
	return b.String()
}

func axis(t0, t1 float64, width int) string {
	left := fmt.Sprintf("%.1fms", t0*1e3)
	right := fmt.Sprintf("%.1fms", t1*1e3)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat(" ", pad) + right
}

func legend() string {
	return "legend: L=load T=teacher-fwd S=student-fwd s=student-bwd U=update c=relay A=all-reduce .=idle\n"
}

// Window returns a [t0, t1] window that covers the given number of steady
// steps starting after a warmup prefix, inferred from the span of the
// longest track. It is a convenience for rendering mid-epoch behaviour.
func Window(tracks []*sim.Track, warmupFrac, spanFrac float64) (t0, t1 float64) {
	var end float64
	for _, tr := range tracks {
		if tr.FreeAt() > end {
			end = tr.FreeAt()
		}
	}
	return end * warmupFrac, end * (warmupFrac + spanFrac)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
