package cost

// Device memory estimation for Fig. 7. All sizes are float32 bytes.
//
// A teacher block runs inference only: it needs its parameters plus a
// small working set (the two largest adjacent activations), because
// activations can be freed as the forward pass proceeds.
//
// A student block under training needs parameters, gradients, optimizer
// state (one momentum buffer), and every stored intermediate activation
// for the backward pass.

// TeacherBlockMemory returns the inference memory of a teacher block at
// the given batch.
func TeacherBlockMemory(b Block, batch int) int64 {
	return b.ParamBytes() + 2*b.MaxActBytes(batch)
}

// StudentBlockMemory returns the training memory of a student block at
// the given batch: 3× parameters (value, gradient, momentum) plus stored
// activations plus the input retained for the first layer's backward.
func StudentBlockMemory(b Block, batch int) int64 {
	return 3*b.ParamBytes() + b.StoredActBytes(batch) + b.InBytes(batch)
}

// RelayBufferMemory returns the buffers a relaying device holds: the
// received input activation and the teacher output being sent downstream.
func RelayBufferMemory(b Block, batch int) int64 {
	return b.InBytes(batch) + b.OutBytes(batch)
}
