package cost

import "fmt"

// Block is a contiguous group of layers treated as one distillation unit:
// a teacher block Ti or a student block Si in the paper's terminology.
type Block struct {
	Name   string
	Layers []Layer
}

// MACs returns the per-sample multiply-accumulate count of the block.
func (b Block) MACs() float64 {
	var s float64
	for _, l := range b.Layers {
		s += l.MACs()
	}
	return s
}

// FwdFLOPs returns the forward FLOPs of the block for a batch.
func (b Block) FwdFLOPs(batch int) float64 {
	var s float64
	for _, l := range b.Layers {
		s += l.FwdFLOPs(batch)
	}
	return s
}

// BwdFLOPs returns the backward FLOPs of the block for a batch.
func (b Block) BwdFLOPs(batch int) float64 {
	var s float64
	for _, l := range b.Layers {
		s += l.BwdFLOPs(batch)
	}
	return s
}

// ParamCount returns the trainable parameter count of the block.
func (b Block) ParamCount() int64 {
	var s int64
	for _, l := range b.Layers {
		s += l.ParamCount()
	}
	return s
}

// ParamBytes returns the float32 byte size of the block's parameters.
func (b Block) ParamBytes() int64 { return 4 * b.ParamCount() }

// InBytes returns the block's input activation size for a batch.
func (b Block) InBytes(batch int) int64 {
	if len(b.Layers) == 0 {
		return 0
	}
	return b.Layers[0].InBytes(batch)
}

// OutBytes returns the block's output activation size for a batch.
func (b Block) OutBytes(batch int) int64 {
	if len(b.Layers) == 0 {
		return 0
	}
	return b.Layers[len(b.Layers)-1].OutBytes(batch)
}

// MaxActBytes returns the largest single activation produced inside the
// block for a batch (governs inference working-set size).
func (b Block) MaxActBytes(batch int) int64 {
	var m int64
	for _, l := range b.Layers {
		if v := l.OutBytes(batch); v > m {
			m = v
		}
	}
	if in := b.InBytes(batch); in > m {
		m = in
	}
	return m
}

// StoredActBytes returns the total activation bytes retained for a
// backward pass through the block (training working set).
func (b Block) StoredActBytes(batch int) int64 {
	var s int64
	for _, l := range b.Layers {
		s += l.StoredBytes(batch)
	}
	return s
}

// Validate checks intra-block shape consistency: each layer's input
// geometry must match the previous layer's output geometry.
func (b Block) Validate() error {
	for i := 1; i < len(b.Layers); i++ {
		prev, cur := b.Layers[i-1], b.Layers[i]
		if cur.BranchStart {
			continue // branch head: input comes from an earlier activation
		}
		if prev.Kind == Flatten || cur.Kind == Linear {
			continue // rank change; channel bookkeeping handled by builder
		}
		if prev.Kind == Linear {
			continue
		}
		if cur.InC != prev.OutC || cur.InH != prev.OutH() || cur.InW != prev.OutW() {
			return fmt.Errorf("cost: block %q layer %d (%s %q) input [%d,%d,%d] does not match previous output [%d,%d,%d]",
				b.Name, i, cur.Kind, cur.Name, cur.InC, cur.InH, cur.InW, prev.OutC, prev.OutH(), prev.OutW())
		}
	}
	return nil
}

// Network is an ordered list of blocks forming a full model.
type Network struct {
	Name   string
	Blocks []Block
}

// MACs returns the per-sample MAC count of the whole network.
func (n Network) MACs() float64 {
	var s float64
	for _, b := range n.Blocks {
		s += b.MACs()
	}
	return s
}

// FLOPs returns 2·MACs — the "FLOPs" convention used for VGG-class models.
func (n Network) FLOPs() float64 { return 2 * n.MACs() }

// ParamCount returns the trainable parameter count of the whole network.
func (n Network) ParamCount() int64 {
	var s int64
	for _, b := range n.Blocks {
		s += b.ParamCount()
	}
	return s
}

// NumBlocks returns the number of blocks.
func (n Network) NumBlocks() int { return len(n.Blocks) }

// Validate checks every block and inter-block shape continuity.
func (n Network) Validate() error {
	for i, b := range n.Blocks {
		if len(b.Layers) == 0 {
			return fmt.Errorf("cost: network %q block %d (%q) is empty", n.Name, i, b.Name)
		}
		if err := b.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Layers returns all layers of the network in order.
func (n Network) AllLayers() []Layer {
	var out []Layer
	for _, b := range n.Blocks {
		out = append(out, b.Layers...)
	}
	return out
}
