// Package cost provides the analytic cost model underlying the performance
// simulator: per-layer multiply-accumulate counts, parameter counts,
// activation sizes, device execution times, and device memory estimates,
// all derived from exact layer shapes.
//
// Conventions: MACs counts only multiply-accumulate operations of
// convolution and linear layers (the quantity reported as "FLOPs" for
// MobileNet-family models in the literature and in the paper's Table II);
// FwdFLOPs counts 2·MACs plus the elementwise work of normalization,
// activation, and pooling layers, and is what the timing model consumes.
package cost

import "fmt"

// Kind enumerates the layer types the cost model understands.
type Kind int

// Layer kinds.
const (
	Conv       Kind = iota // standard 2-D convolution
	DWConv                 // depthwise 2-D convolution
	Linear                 // fully connected
	BatchNorm              // 2-D batch normalization
	Act                    // elementwise activation
	Pool                   // spatial max/avg pooling with square kernel
	GlobalPool             // global average pooling to 1x1
	Add                    // elementwise residual addition
	Flatten                // reshape only
	SE                     // squeeze-and-excitation (gate channels by a pooled MLP)
	Embed                  // token + positional embedding lookup
	Attn                   // multi-head self-attention (QKV + output projections)
	LayerNorm              // per-position layer normalization
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case Linear:
		return "linear"
	case BatchNorm:
		return "bn"
	case Act:
		return "act"
	case Pool:
		return "pool"
	case GlobalPool:
		return "gap"
	case Add:
		return "add"
	case Flatten:
		return "flatten"
	case SE:
		return "se"
	case Embed:
		return "embed"
	case Attn:
		return "attn"
	case LayerNorm:
		return "ln"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Layer describes one layer's geometry for cost purposes.
//
// For spatial layers, InH/InW are the input spatial dimensions and the
// output dimensions follow from Kernel/Stride/Pad. Linear layers use
// InC/OutC and apply per spatial position (conv models set InH=InW=1;
// the transformer MLP applies the same weights at every sequence
// position). SE layers preserve geometry and reuse Kernel as the squeeze
// (bottleneck) channel count.
//
// Transformer layers map sequence geometry onto the same fields:
// channels are the hidden width (InC=OutC=Dim), InH is the sequence
// length, and InW is 1. Embed consumes [batch, L] token ids (InC=1,
// InH=L) and reuses Kernel as the vocabulary size; Attn reuses Kernel as
// the head count. ComputeScale scales compute
// and invocation
// cost (used for NAS supernets where each step samples one of several
// candidate operations); StoreScale scales stored-activation memory the
// same way. Both default to 1 via NewLayer-style construction in the
// model package.
type Layer struct {
	Name                string
	Kind                Kind
	InC, OutC           int
	InH, InW            int
	Kernel, Stride, Pad int
	Bias                bool

	ComputeScale float64
	StoreScale   float64

	// BranchStart marks a layer whose input is not the previous layer's
	// output but an earlier activation (the head of a parallel candidate
	// branch in a NAS supernet). Shape-continuity validation restarts at
	// such layers.
	BranchStart bool
}

// OutH returns the output height.
func (l Layer) OutH() int { return l.outDim(l.InH) }

// OutW returns the output width.
func (l Layer) OutW() int { return l.outDim(l.InW) }

func (l Layer) outDim(in int) int {
	switch l.Kind {
	case Conv, DWConv:
		return (in+2*l.Pad-l.Kernel)/l.Stride + 1
	case Pool:
		return in / l.Kernel
	case GlobalPool:
		return 1
	case SE:
		return in
	case Flatten:
		return 1
	default:
		// BatchNorm, Act, Add, Embed, Attn, LayerNorm preserve shape, as
		// does Linear (it applies per spatial/sequence position; conv
		// models use it at InH=InW=1 where this matches the old rank
		// collapse).
		return in
	}
}

// computeScale returns ComputeScale defaulting to 1.
func (l Layer) computeScale() float64 {
	if l.ComputeScale == 0 {
		return 1
	}
	return l.ComputeScale
}

// storeScale returns StoreScale defaulting to 1.
func (l Layer) storeScale() float64 {
	if l.StoreScale == 0 {
		return 1
	}
	return l.StoreScale
}

// MACs returns the multiply-accumulate count for one sample, counting only
// convolution and linear layers (literature convention). The ComputeScale
// is intentionally not applied: MACs describes the architecture, not the
// training schedule.
func (l Layer) MACs() float64 {
	spatial := float64(l.OutH() * l.OutW())
	switch l.Kind {
	case Conv:
		return float64(l.Kernel*l.Kernel*l.InC*l.OutC) * spatial
	case DWConv:
		return float64(l.Kernel*l.Kernel*l.InC) * spatial
	case Linear:
		// Applied once per spatial/sequence position (spatial is 1 for
		// the conv models' classifier heads).
		return float64(l.InC*l.OutC) * spatial
	case SE:
		// Two dense layers over pooled channels: C -> squeeze -> C.
		return 2 * float64(l.InC) * float64(l.Kernel)
	case Attn:
		// Q/K/V/output projections (4·D²·L) plus score and context
		// batched GEMMs (2·L²·D), per sample.
		d, seq := float64(l.InC), float64(l.InH)
		return 4*d*d*seq + 2*seq*seq*d
	default:
		return 0
	}
}

// FwdFLOPs returns the forward floating-point operations for a batch,
// scaled by ComputeScale. Conv/linear count 2·MACs; cheap layers count
// their elementwise work so launch-bound regimes stay visible.
func (l Layer) FwdFLOPs(batch int) float64 {
	b := float64(batch)
	outElems := b * float64(l.OutC) * float64(l.OutH()*l.OutW())
	var f float64
	switch l.Kind {
	case Conv, DWConv, Linear:
		f = 2 * l.MACs() * b
		if l.Bias {
			f += outElems
		}
	case SE:
		// Pool + two dense layers + sigmoid gate applied per element.
		f = 2*l.MACs()*b + 3*outElems
	case Attn:
		// Projections and batched GEMMs, plus the softmax over the
		// [heads, L, L] score tensor.
		f = 2*l.MACs()*b + 5*b*float64(l.Kernel)*float64(l.InH*l.InH)
	case Embed:
		// Token gather + positional add per output element.
		f = outElems
	case LayerNorm:
		// Mean, variance, normalize, affine per element.
		f = 6 * outElems
	case BatchNorm:
		f = 4 * outElems // normalize + affine
	case Act:
		f = outElems
	case Pool:
		f = float64(l.Kernel*l.Kernel) * outElems
	case GlobalPool:
		f = b * float64(l.InC) * float64(l.InH*l.InW)
	case Add:
		f = outElems
	case Flatten:
		f = 0
	}
	return f * l.computeScale()
}

// BwdFLOPs returns the backward floating-point operations for a batch:
// roughly twice forward for parameterized layers (input gradient plus
// weight gradient) and once forward for the rest.
func (l Layer) BwdFLOPs(batch int) float64 {
	switch l.Kind {
	case Conv, DWConv, Linear, BatchNorm, SE, Attn, LayerNorm:
		return 2 * l.FwdFLOPs(batch)
	default:
		// Embed backward is a scatter-add of the same magnitude as its
		// forward gather, so it stays in the 1x branch with the other
		// parameter-light layers.
		return l.FwdFLOPs(batch)
	}
}

// Invocations returns the expected number of kernel launches for a
// forward pass, honouring ComputeScale (a candidate sampled with
// probability p launches with probability p).
func (l Layer) Invocations() float64 {
	if l.Kind == Flatten {
		return 0
	}
	return l.computeScale()
}

// ParamCount returns the number of trainable parameters.
func (l Layer) ParamCount() int64 {
	var p int64
	switch l.Kind {
	case Conv:
		p = int64(l.Kernel*l.Kernel) * int64(l.InC) * int64(l.OutC)
		if l.Bias {
			p += int64(l.OutC)
		}
	case DWConv:
		p = int64(l.Kernel*l.Kernel) * int64(l.InC)
		if l.Bias {
			p += int64(l.InC)
		}
	case Linear:
		p = int64(l.InC)*int64(l.OutC) + int64(l.OutC)
	case BatchNorm:
		p = 2 * int64(l.OutC)
	case SE:
		// C->squeeze and squeeze->C dense layers with biases.
		p = 2*int64(l.InC)*int64(l.Kernel) + int64(l.Kernel) + int64(l.InC)
	case Embed:
		// Token table [Vocab, Dim] plus positional table [L, Dim];
		// Kernel carries the vocabulary size.
		p = int64(l.Kernel)*int64(l.OutC) + int64(l.InH)*int64(l.OutC)
	case Attn:
		// Q/K/V/output projections, each [Dim, Dim] with bias.
		p = 4 * (int64(l.InC)*int64(l.OutC) + int64(l.OutC))
	case LayerNorm:
		p = 2 * int64(l.OutC) // gain and bias
	}
	return p
}

// InBytes returns the float32 input activation size for a batch.
func (l Layer) InBytes(batch int) int64 {
	return 4 * int64(batch) * int64(l.InC) * int64(l.InH) * int64(l.InW)
}

// OutBytes returns the float32 output activation size for a batch.
func (l Layer) OutBytes(batch int) int64 {
	if l.Kind == Flatten {
		return l.InBytes(batch) // reshape preserves elements
	}
	return 4 * int64(batch) * int64(l.OutC) * int64(l.OutH()) * int64(l.OutW())
}

// OutElems returns the number of output elements a kernel produces for a
// batch — the parallelism available to fill the device (occupancy model).
func (l Layer) OutElems(batch int) float64 {
	return float64(batch) * float64(l.OutC) * float64(l.OutH()*l.OutW())
}

// StoredBytes returns the activation bytes retained for the backward pass,
// honouring StoreScale.
func (l Layer) StoredBytes(batch int) int64 {
	return int64(float64(l.OutBytes(batch)) * l.storeScale())
}

// OutC_ returns the channel count seen by the next layer (helper for
// builders; Flatten folds spatial dims into channels).
func (l Layer) NextC() int {
	if l.Kind == Flatten {
		return l.InC * l.InH * l.InW
	}
	return l.OutC
}
