package cost

import (
	"math"
	"testing"

	"pipebd/internal/hw"
)

func conv(name string, inC, outC, k, s, p, h, w int, bias bool) Layer {
	return Layer{Name: name, Kind: Conv, InC: inC, OutC: outC, InH: h, InW: w,
		Kernel: k, Stride: s, Pad: p, Bias: bias}
}

func TestConvMACsKnownValues(t *testing.T) {
	// 3x3 conv, 3->64, 224x224 stride 1 pad 1: 9*3*64*224*224 MACs.
	l := conv("c", 3, 64, 3, 1, 1, 224, 224, false)
	want := 9.0 * 3 * 64 * 224 * 224
	if l.MACs() != want {
		t.Fatalf("MACs = %v, want %v", l.MACs(), want)
	}
	if l.OutH() != 224 || l.OutW() != 224 {
		t.Fatalf("out dims = %dx%d", l.OutH(), l.OutW())
	}
}

func TestStrideHalvesSpatial(t *testing.T) {
	l := conv("c", 8, 8, 3, 2, 1, 32, 32, false)
	if l.OutH() != 16 || l.OutW() != 16 {
		t.Fatalf("stride-2 out = %dx%d, want 16x16", l.OutH(), l.OutW())
	}
}

func TestDWConvMACs(t *testing.T) {
	l := Layer{Kind: DWConv, InC: 32, OutC: 32, InH: 10, InW: 10, Kernel: 3, Stride: 1, Pad: 1}
	want := 9.0 * 32 * 100
	if l.MACs() != want {
		t.Fatalf("DW MACs = %v, want %v", l.MACs(), want)
	}
}

func TestLinearParamAndMACs(t *testing.T) {
	l := Layer{Kind: Linear, InC: 512, OutC: 10, InH: 1, InW: 1, Bias: true}
	if l.MACs() != 5120 {
		t.Fatalf("Linear MACs = %v", l.MACs())
	}
	if l.ParamCount() != 512*10+10 {
		t.Fatalf("Linear params = %v", l.ParamCount())
	}
}

func TestParamCounts(t *testing.T) {
	cases := []struct {
		l    Layer
		want int64
	}{
		{conv("c", 3, 64, 3, 1, 1, 8, 8, true), 3*64*9 + 64},
		{conv("c", 3, 64, 3, 1, 1, 8, 8, false), 3 * 64 * 9},
		{Layer{Kind: DWConv, InC: 16, OutC: 16, Kernel: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}, 16 * 9},
		{Layer{Kind: BatchNorm, InC: 32, OutC: 32, InH: 8, InW: 8}, 64},
		{Layer{Kind: Act, InC: 32, OutC: 32, InH: 8, InW: 8}, 0},
		{Layer{Kind: Pool, InC: 32, OutC: 32, InH: 8, InW: 8, Kernel: 2}, 0},
	}
	for _, c := range cases {
		if got := c.l.ParamCount(); got != c.want {
			t.Errorf("%v params = %d, want %d", c.l.Kind, got, c.want)
		}
	}
}

func TestFwdFLOPsScalesLinearlyWithBatch(t *testing.T) {
	l := conv("c", 16, 32, 3, 1, 1, 14, 14, false)
	f1, f4 := l.FwdFLOPs(1), l.FwdFLOPs(4)
	if math.Abs(f4-4*f1) > 1e-6 {
		t.Fatalf("FLOPs not linear in batch: %v vs 4*%v", f4, f1)
	}
}

func TestComputeScaleAffectsFLOPsNotMACs(t *testing.T) {
	l := conv("c", 16, 32, 3, 1, 1, 14, 14, false)
	scaled := l
	scaled.ComputeScale = 0.5
	if scaled.MACs() != l.MACs() {
		t.Fatal("MACs must describe architecture, not schedule")
	}
	if math.Abs(scaled.FwdFLOPs(8)-0.5*l.FwdFLOPs(8)) > 1e-6 {
		t.Fatal("FwdFLOPs must honour ComputeScale")
	}
}

func TestBwdFLOPsDoubleForParamLayers(t *testing.T) {
	l := conv("c", 16, 32, 3, 1, 1, 14, 14, false)
	if l.BwdFLOPs(2) != 2*l.FwdFLOPs(2) {
		t.Fatal("conv backward should be 2x forward")
	}
	a := Layer{Kind: Act, InC: 8, OutC: 8, InH: 4, InW: 4}
	if a.BwdFLOPs(2) != a.FwdFLOPs(2) {
		t.Fatal("activation backward should be 1x forward")
	}
}

func TestActivationBytes(t *testing.T) {
	l := conv("c", 3, 64, 3, 2, 1, 32, 32, false)
	if got := l.InBytes(2); got != 4*2*3*32*32 {
		t.Fatalf("InBytes = %d", got)
	}
	if got := l.OutBytes(2); got != 4*2*64*16*16 {
		t.Fatalf("OutBytes = %d", got)
	}
	lin := Layer{Kind: Linear, InC: 100, OutC: 10, InH: 1, InW: 1}
	if got := lin.OutBytes(3); got != 4*3*10 {
		t.Fatalf("Linear OutBytes = %d", got)
	}
}

func testBlock() Block {
	l1 := conv("c1", 3, 16, 3, 1, 1, 8, 8, false)
	l2 := Layer{Name: "bn", Kind: BatchNorm, InC: 16, OutC: 16, InH: 8, InW: 8}
	l3 := Layer{Name: "act", Kind: Act, InC: 16, OutC: 16, InH: 8, InW: 8}
	l4 := conv("c2", 16, 32, 3, 2, 1, 8, 8, false)
	return Block{Name: "b", Layers: []Layer{l1, l2, l3, l4}}
}

func TestBlockAggregation(t *testing.T) {
	b := testBlock()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	wantMACs := b.Layers[0].MACs() + b.Layers[3].MACs()
	if b.MACs() != wantMACs {
		t.Fatalf("block MACs = %v, want %v", b.MACs(), wantMACs)
	}
	if b.ParamCount() != b.Layers[0].ParamCount()+b.Layers[1].ParamCount()+b.Layers[3].ParamCount() {
		t.Fatal("block params wrong")
	}
	if b.InBytes(1) != 4*3*64 {
		t.Fatalf("block InBytes = %d", b.InBytes(1))
	}
	if b.OutBytes(1) != 4*32*16 {
		t.Fatalf("block OutBytes = %d", b.OutBytes(1))
	}
	// Max activation is the 16x8x8 intermediate (4096B/sample), larger
	// than input (768B) and output (2048B).
	if b.MaxActBytes(1) != 4*16*64 {
		t.Fatalf("block MaxActBytes = %d", b.MaxActBytes(1))
	}
}

func TestBlockValidateCatchesShapeBreak(t *testing.T) {
	b := testBlock()
	b.Layers[3].InC = 99
	if err := b.Validate(); err == nil {
		t.Fatal("Validate should catch channel mismatch")
	}
	// BranchStart suspends the check.
	b.Layers[3].BranchStart = true
	if err := b.Validate(); err != nil {
		t.Fatalf("BranchStart should suspend continuity: %v", err)
	}
}

func TestNetworkAggregation(t *testing.T) {
	n := Network{Name: "n", Blocks: []Block{testBlock()}}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.FLOPs() != 2*n.MACs() {
		t.Fatal("FLOPs must be 2*MACs")
	}
	if n.NumBlocks() != 1 || len(n.AllLayers()) != 4 {
		t.Fatal("network structure accessors wrong")
	}
	empty := Network{Name: "e", Blocks: []Block{{Name: "x"}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty block must fail validation")
	}
}

func TestTimeModelRooflineShape(t *testing.T) {
	g := hw.RTXA6000()
	// A fat 1x1 conv at tiny spatial size is compute-bound; a depthwise
	// conv at huge spatial size is bandwidth-bound. Effective FLOP/s of
	// the former must be far higher.
	fat := conv("fat", 512, 512, 1, 1, 0, 7, 7, false)
	dw := Layer{Kind: DWConv, InC: 32, OutC: 32, InH: 112, InW: 112, Kernel: 3, Stride: 1, Pad: 1}
	batch := 256
	fatEff := fat.FwdFLOPs(batch) / LayerFwdTime(g, fat, batch)
	dwEff := dw.FwdFLOPs(batch) / LayerFwdTime(g, dw, batch)
	if fatEff < 10*dwEff {
		t.Fatalf("depthwise at large spatial should be far below compute roof: fat %.3g dw %.3g", fatEff, dwEff)
	}
}

func TestBlockTimesPositiveAndAdditive(t *testing.T) {
	g := hw.RTXA6000()
	b := testBlock()
	fwd := BlockFwdTime(g, b, 32)
	bwd := BlockBwdTime(g, b, 32)
	if fwd <= 0 || bwd <= 0 {
		t.Fatal("times must be positive")
	}
	if got := BlockTrainTime(g, b, 32); math.Abs(got-(fwd+bwd)) > 1e-12 {
		t.Fatal("train time must be fwd+bwd")
	}
	if bwd <= fwd {
		t.Fatal("backward should cost more than forward")
	}
}

func TestLargerBatchAmortizesLaunches(t *testing.T) {
	g := hw.RTXA6000()
	b := testBlock()
	perSample64 := BlockTrainTime(g, b, 64) / 64
	perSample512 := BlockTrainTime(g, b, 512) / 512
	if perSample512 >= perSample64 {
		t.Fatalf("per-sample time must shrink with batch: %v vs %v", perSample512, perSample64)
	}
}

func TestComputeScaleScalesTime(t *testing.T) {
	g := hw.RTXA6000()
	l := conv("c", 64, 64, 3, 1, 1, 28, 28, false)
	half := l
	half.ComputeScale = 0.5
	full := LayerFwdTime(g, l, 64)
	got := LayerFwdTime(g, half, 64)
	if math.Abs(got-full/2) > 1e-9 {
		t.Fatalf("scaled time = %v, want %v", got, full/2)
	}
}

func TestUpdateTimeGrowsWithParams(t *testing.T) {
	g := hw.RTXA6000()
	small := Block{Layers: []Layer{conv("c", 8, 8, 3, 1, 1, 4, 4, false)}}
	big := Block{Layers: []Layer{conv("c", 512, 512, 3, 1, 1, 4, 4, false)}}
	if UpdateTime(g, small) >= UpdateTime(g, big) {
		t.Fatal("update time must grow with parameter count")
	}
}

func TestMemoryEstimates(t *testing.T) {
	b := testBlock()
	tm := TeacherBlockMemory(b, 32)
	sm := StudentBlockMemory(b, 32)
	if tm <= 0 || sm <= 0 {
		t.Fatal("memory must be positive")
	}
	if sm <= tm {
		t.Fatal("training memory must exceed inference memory")
	}
	// Student memory grows linearly-ish with batch (activations dominate).
	if StudentBlockMemory(b, 64) <= sm {
		t.Fatal("student memory must grow with batch")
	}
	if RelayBufferMemory(b, 32) != b.InBytes(32)+b.OutBytes(32) {
		t.Fatal("relay buffers are input+output activations")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Conv, DWConv, Linear, BatchNorm, Act, Pool, GlobalPool, Add, Flatten}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty/duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestSELayerCosts(t *testing.T) {
	l := Layer{Name: "se", Kind: SE, InC: 64, OutC: 64, InH: 14, InW: 14, Kernel: 16}
	if l.OutH() != 14 || l.OutW() != 14 {
		t.Fatal("SE must preserve geometry")
	}
	// Two dense layers over pooled channels: 2 * 64 * 16 MACs.
	if got := l.MACs(); got != 2*64*16 {
		t.Fatalf("SE MACs = %v, want %v", got, 2*64*16)
	}
	// Params: two dense layers plus biases.
	want := int64(2*64*16 + 16 + 64)
	if got := l.ParamCount(); got != want {
		t.Fatalf("SE params = %d, want %d", got, want)
	}
	if l.BwdFLOPs(4) != 2*l.FwdFLOPs(4) {
		t.Fatal("SE backward should be 2x forward (param layer)")
	}
	if Kind(SE).String() != "se" {
		t.Fatal("SE kind name wrong")
	}
}

func TestSELayerTimePositive(t *testing.T) {
	g := hw.RTXA6000()
	l := Layer{Kind: SE, InC: 32, OutC: 32, InH: 28, InW: 28, Kernel: 8}
	if LayerFwdTime(g, l, 64) <= 0 || LayerBwdTime(g, l, 64) <= 0 {
		t.Fatal("SE layer times must be positive")
	}
}
