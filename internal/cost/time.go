package cost

import "pipebd/internal/hw"

// Memory-traffic estimates feeding the roofline model. The forward pass
// of a layer reads its input and parameters and writes its output; the
// backward pass of a parameterized layer reads the output gradient and
// saved activations and writes both the input gradient and the parameter
// gradient.
//
// Depthwise convolutions additionally carry a bandwidth-efficiency
// derating: their grouped, low-reuse access patterns achieve only a
// fraction of streaming bandwidth in FP32 library kernels. They dominate
// the large-feature-map early blocks of MobileNet-family models, which is
// what makes ImageNet's block 0 tower over the rest (the paper's Fig. 5).

// dwBandwidthEff is the fraction of streaming bandwidth depthwise
// convolution kernels achieve.
const dwBandwidthEff = 0.18

// effectiveTraffic inflates a layer's traffic by its kind's bandwidth
// (in)efficiency so the roofline model sees the achievable rate.
func effectiveTraffic(l Layer, traffic int64) int64 {
	if l.Kind == DWConv {
		return int64(float64(traffic) / dwBandwidthEff)
	}
	return traffic
}

// LayerFwdTraffic returns the forward memory traffic in bytes (unscaled).
func LayerFwdTraffic(l Layer, batch int) int64 {
	return l.InBytes(batch) + l.OutBytes(batch) + 4*l.ParamCount()
}

// LayerBwdTraffic returns the backward memory traffic in bytes (unscaled).
func LayerBwdTraffic(l Layer, batch int) int64 {
	switch l.Kind {
	case Conv, DWConv, Linear, BatchNorm, SE:
		return 2*(l.InBytes(batch)+l.OutBytes(batch)) + 8*l.ParamCount()
	default:
		return l.InBytes(batch) + l.OutBytes(batch)
	}
}

// LayerFwdTime returns the time for one forward invocation of a layer at
// the given batch on the given GPU, honouring the layer's ComputeScale
// for compute, traffic, and launch overhead alike.
func LayerFwdTime(g hw.GPU, l Layer, batch int) float64 {
	scale := l.computeScale()
	if scale == 0 || l.Kind == Flatten {
		return 0
	}
	rawFlops := l.FwdFLOPs(batch) / scale
	traffic := effectiveTraffic(l, LayerFwdTraffic(l, batch))
	return scale * g.KernelTimeElems(rawFlops, traffic, l.OutElems(batch))
}

// LayerBwdTime returns the time for the backward pass of a layer. Param
// layers launch two kernels (input gradient, weight gradient), each of
// roughly forward compute cost and half the backward traffic; the rest
// launch one.
func LayerBwdTime(g hw.GPU, l Layer, batch int) float64 {
	scale := l.computeScale()
	if scale == 0 || l.Kind == Flatten {
		return 0
	}
	rawFlops := l.FwdFLOPs(batch) / scale
	traffic := effectiveTraffic(l, LayerBwdTraffic(l, batch))
	elems := l.OutElems(batch)
	switch l.Kind {
	case Conv, DWConv, Linear, BatchNorm, SE:
		return scale * 2 * g.KernelTimeElems(rawFlops, traffic/2, elems)
	default:
		return scale * g.KernelTimeElems(rawFlops, traffic, elems)
	}
}

// BlockFwdTime returns the forward time of a block at the given batch.
func BlockFwdTime(g hw.GPU, b Block, batch int) float64 {
	var t float64
	for _, l := range b.Layers {
		t += LayerFwdTime(g, l, batch)
	}
	return t
}

// BlockBwdTime returns the backward time of a block at the given batch.
func BlockBwdTime(g hw.GPU, b Block, batch int) float64 {
	var t float64
	for _, l := range b.Layers {
		t += LayerBwdTime(g, l, batch)
	}
	return t
}

// BlockTrainTime returns forward plus backward time of a block.
func BlockTrainTime(g hw.GPU, b Block, batch int) float64 {
	return BlockFwdTime(g, b, batch) + BlockBwdTime(g, b, batch)
}

// UpdateTime returns the optimizer-update time for a block's parameters:
// a bandwidth-bound elementwise pass (SGD with momentum reads parameter,
// gradient, and momentum and writes parameter and momentum) plus one
// launch.
func UpdateTime(g hw.GPU, b Block) float64 {
	params := b.ParamCount()
	return g.KernelTime(4*float64(params), 5*4*params)
}
