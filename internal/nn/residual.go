package nn

import (
	"fmt"

	"pipebd/internal/tensor"
)

// Residual wraps a body layer with an identity skip connection:
// y = x + body(x). The body must preserve the input shape.
type Residual struct {
	Body Layer
}

// NewResidual wraps body with an identity skip connection.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

// Forward computes x + body(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	if !y.SameShape(x) {
		panic(fmt.Sprintf("nn: Residual body changed shape %v -> %v", x.Shape(), y.Shape()))
	}
	return tensor.Add(x, y)
}

// Backward sums the skip gradient and the body gradient.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dBody := r.Body.Backward(grad)
	return tensor.Add(grad, dBody)
}

// Params returns the body's parameters.
func (r *Residual) Params() []*Param { return r.Body.Params() }

var _ Layer = (*Residual)(nil)
