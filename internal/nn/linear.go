package nn

import (
	"fmt"
	"math/rand"

	"pipebd/internal/tensor"
)

// Linear is a fully connected layer: y = x·Wᵀ + b for x of shape [N, In].
// All three of its GEMMs (TB forward, TA for dW, plain for dx) route
// through the backend's register-blocked packed kernels; shapes too small
// to amortize packing fall back to the bit-identical reference kernels.
type Linear struct {
	In, Out int
	Weight  *Param // [Out, In]
	Bias    *Param // [Out], nil when disabled

	be        tensor.Backend // nil: process default
	scratch   *tensor.Arena  // recycles the dW temporary across steps
	lastInput *tensor.Tensor
}

// NewLinear constructs a Linear layer with Xavier-uniform initialization.
func NewLinear(rng *rand.Rand, in, out int, bias bool) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: NewParam("linear.weight", tensor.XavierUniform(rng, in, out, out, in)),
	}
	if bias {
		l.Bias = NewParam("linear.bias", tensor.New(out))
	}
	return l
}

// SetBackend routes the layer's GEMMs through be (nil restores the
// process default).
func (l *Linear) SetBackend(be tensor.Backend) { l.be = be }

// Forward computes y = x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 2 || shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N,%d], got %v", l.In, shape))
	}
	out := tensor.MatMulTBWith(backendOr(l.be), x, l.Weight.Value) // [N, Out]
	if l.Bias != nil {
		n := shape[0]
		od, bd := out.Data(), l.Bias.Value.Data()
		for i := 0; i < n; i++ {
			row := od[i*l.Out : (i+1)*l.Out]
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	if train {
		l.lastInput = x
	}
	return out
}

// Backward propagates grad [N, Out] and accumulates dW, dB.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastInput == nil {
		panic("nn: Linear.Backward called before Forward(train=true)")
	}
	be := backendOr(l.be)
	if l.scratch == nil {
		l.scratch = tensor.NewArena()
	}
	// dW = gradᵀ · x  -> [Out, In]
	dW := l.scratch.Get(l.Out, l.In)
	be.MatMulTAInto(dW, grad, l.lastInput)
	be.Axpy(l.Weight.Grad, 1, dW)
	l.scratch.Release(dW)
	if l.Bias != nil {
		n := grad.Shape()[0]
		gd, bd := grad.Data(), l.Bias.Grad.Data()
		for i := 0; i < n; i++ {
			row := gd[i*l.Out : (i+1)*l.Out]
			for j, v := range row {
				bd[j] += v
			}
		}
	}
	// dx = grad · W -> [N, In]
	return tensor.MatMulWith(be, grad, l.Weight.Value)
}

// Params returns weight (and bias when present).
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

var (
	_ Layer       = (*Linear)(nil)
	_ BackendUser = (*Linear)(nil)
)
