package nn

import "pipebd/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and L2 weight
// decay, matching the paper's training setup (SGD for both workloads).
// Updates are deterministic given identical gradients, a property the
// bit-equivalence experiments depend on.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every parameter:
//
//	g      = grad + wd*value
//	v      = momentum*v + g
//	value -= lr*v
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil && s.Momentum != 0 {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		pd, gd := p.Value.Data(), p.Grad.Data()
		if s.Momentum != 0 {
			vd := v.Data()
			for i := range pd {
				g := gd[i] + s.WeightDecay*pd[i]
				vd[i] = s.Momentum*vd[i] + g
				pd[i] -= s.LR * vd[i]
			}
		} else {
			for i := range pd {
				g := gd[i] + s.WeightDecay*pd[i]
				pd[i] -= s.LR * g
			}
		}
	}
}

// ZeroGrad clears the gradients of the given parameters.
func (s *SGD) ZeroGrad(params []*Param) { ZeroGrads(params) }

// Velocity returns p's momentum buffer, or nil if no update has touched
// it yet (equivalent to an all-zero buffer). Exposed so checkpoint /
// recovery code can capture the optimizer state that, together with the
// parameter values, makes an SGD trajectory replayable bit-for-bit.
func (s *SGD) Velocity(p *Param) *tensor.Tensor { return s.velocity[p] }

// SetVelocity installs v as p's momentum buffer (restoring a snapshot).
// The optimizer takes ownership of v and mutates it in place on later
// steps. A nil v clears the buffer back to the lazy-zero state.
func (s *SGD) SetVelocity(p *Param, v *tensor.Tensor) {
	if v == nil {
		delete(s.velocity, p)
		return
	}
	s.velocity[p] = v
}
