package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipebd/internal/tensor"
)

func TestSGDPlainStep(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{1, 2}, 2))
	p.Grad.CopyFrom(tensor.FromSlice([]float32{0.5, -0.5}, 2))
	NewSGD(0.1, 0, 0).Step([]*Param{p})
	want := tensor.FromSlice([]float32{0.95, 2.05}, 2)
	if !p.Value.AllClose(want, 1e-6, 1e-6) {
		t.Fatalf("SGD step = %v, want %v", p.Value, want)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{0}, 1))
	opt := NewSGD(1, 0.9, 0)
	// Constant gradient of 1: velocities 1, 1.9, 2.71...
	p.Grad.Fill(1)
	opt.Step([]*Param{p})
	if got := p.Value.Data()[0]; got != -1 {
		t.Fatalf("step1 = %v, want -1", got)
	}
	opt.Step([]*Param{p})
	if got := p.Value.Data()[0]; math.Abs(float64(got)+2.9) > 1e-6 {
		t.Fatalf("step2 = %v, want -2.9", got)
	}
}

func TestSGDWeightDecayPullsTowardZero(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{10}, 1))
	opt := NewSGD(0.1, 0, 0.5)
	p.Grad.Zero()
	opt.Step([]*Param{p})
	// value -= lr * wd * value = 10 - 0.1*0.5*10 = 9.5
	if got := p.Value.Data()[0]; math.Abs(float64(got)-9.5) > 1e-6 {
		t.Fatalf("weight decay step = %v, want 9.5", got)
	}
}

func TestSGDDeterminism(t *testing.T) {
	run := func() *tensor.Tensor {
		rng := rand.New(rand.NewSource(42))
		p := NewParam("w", tensor.Rand(rng, -1, 1, 8))
		opt := NewSGD(0.05, 0.9, 1e-4)
		for step := 0; step < 20; step++ {
			for i := range p.Grad.Data() {
				p.Grad.Data()[i] = float32(i%3) - 1
			}
			opt.Step([]*Param{p})
		}
		return p.Value
	}
	if !run().Equal(run()) {
		t.Fatal("SGD must be bitwise deterministic")
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² by hand-computed gradients.
	target := tensor.FromSlice([]float32{3, -2, 0.5}, 3)
	p := NewParam("w", tensor.New(3))
	opt := NewSGD(0.1, 0.9, 0)
	for step := 0; step < 200; step++ {
		p.ZeroGrad()
		g := tensor.Sub(p.Value, target)
		tensor.AddInto(p.Grad, tensor.Scale(g, 2))
		opt.Step([]*Param{p})
	}
	if !p.Value.AllClose(target, 1e-3, 1e-3) {
		t.Fatalf("SGD did not converge: %v, want %v", p.Value, target)
	}
}

func TestTrainingReducesLossEndToEnd(t *testing.T) {
	// A small CNN should fit 16 random samples (memorization test): the
	// loss after training must drop by a large factor.
	rng := rand.New(rand.NewSource(7))
	net := NewSequential(
		NewConv2d(rng, 1, 4, 3, 1, 1, true),
		NewReLU(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, 4*4*4, 4, true),
	)
	x := tensor.Rand(rng, -1, 1, 16, 1, 8, 8)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	opt := NewSGD(0.1, 0.9, 0)
	params := net.Params()

	firstLoss := -1.0
	var lastLoss float64
	for epoch := 0; epoch < 60; epoch++ {
		ZeroGrads(params)
		out := net.Forward(x, true)
		loss, grad := SoftmaxCrossEntropy(out, labels)
		if firstLoss < 0 {
			firstLoss = loss
		}
		lastLoss = loss
		net.Backward(grad)
		opt.Step(params)
	}
	if lastLoss > firstLoss*0.2 {
		t.Fatalf("training did not reduce loss: first %v last %v", firstLoss, lastLoss)
	}
	out := net.Forward(x, false)
	if acc := Accuracy(out, labels); acc < 0.9 {
		t.Fatalf("network failed to memorize: accuracy %v", acc)
	}
}
