package nn

import (
	"fmt"

	"pipebd/internal/tensor"
)

// MaxPool2d is a max pooling layer with square kernel and stride equal to
// the kernel size (the common non-overlapping configuration).
type MaxPool2d struct {
	Kernel int

	argmax  []int // flat input index of each output element
	inShape []int
}

// NewMaxPool2d returns a non-overlapping max pool of the given kernel.
func NewMaxPool2d(kernel int) *MaxPool2d { return &MaxPool2d{Kernel: kernel} }

// Forward pools an NCHW input; H and W must be divisible by Kernel.
func (m *MaxPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool2d expects NCHW, got %v", shape))
	}
	n, c, h, w := shape[0], shape[1], shape[2], shape[3]
	k := m.Kernel
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool2d input %dx%d not divisible by kernel %d", h, w, k))
	}
	oh, ow := h/k, w/k
	out := tensor.New(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	var argmax []int
	if train {
		argmax = make([]int, out.Numel())
	}
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inBase := (ni*c + ci) * h * w
			outBase := (ni*c + ci) * oh * ow
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					bestIdx := inBase + (oi*k)*w + oj*k
					best := xd[bestIdx]
					for ki := 0; ki < k; ki++ {
						row := inBase + (oi*k+ki)*w + oj*k
						for kj := 0; kj < k; kj++ {
							if v := xd[row+kj]; v > best {
								best, bestIdx = v, row+kj
							}
						}
					}
					outIdx := outBase + oi*ow + oj
					od[outIdx] = best
					if train {
						argmax[outIdx] = bestIdx
					}
				}
			}
		}
	}
	if train {
		m.argmax, m.inShape = argmax, shape
	}
	return out
}

// Backward routes each output gradient to its argmax input position.
func (m *MaxPool2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic("nn: MaxPool2d.Backward called before Forward(train=true)")
	}
	out := tensor.New(m.inShape...)
	od, gd := out.Data(), grad.Data()
	for i, src := range m.argmax {
		od[src] += gd[i]
	}
	return out
}

// Params returns nil; pooling has no trainable parameters.
func (m *MaxPool2d) Params() []*Param { return nil }

// GlobalAvgPool2d averages each channel's spatial plane to [N, C, 1, 1].
type GlobalAvgPool2d struct {
	inShape []int
}

// NewGlobalAvgPool2d returns a global average pooling layer.
func NewGlobalAvgPool2d() *GlobalAvgPool2d { return &GlobalAvgPool2d{} }

// Forward averages over H×W per channel.
func (g *GlobalAvgPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool2d expects NCHW, got %v", shape))
	}
	n, c, h, w := shape[0], shape[1], shape[2], shape[3]
	spatial := h * w
	out := tensor.New(n, c, 1, 1)
	xd, od := x.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * spatial
			var s float64
			for i := 0; i < spatial; i++ {
				s += float64(xd[base+i])
			}
			od[ni*c+ci] = float32(s / float64(spatial))
		}
	}
	if train {
		g.inShape = shape
	}
	return out
}

// Backward spreads each channel gradient uniformly over its plane.
func (g *GlobalAvgPool2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic("nn: GlobalAvgPool2d.Backward called before Forward(train=true)")
	}
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	spatial := h * w
	out := tensor.New(g.inShape...)
	od, gd := out.Data(), grad.Data()
	inv := 1 / float32(spatial)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			v := gd[ni*c+ci] * inv
			base := (ni*c + ci) * spatial
			for i := 0; i < spatial; i++ {
				od[base+i] = v
			}
		}
	}
	return out
}

// Params returns nil; pooling has no trainable parameters.
func (g *GlobalAvgPool2d) Params() []*Param { return nil }

// Flatten reshapes NCHW to [N, C*H*W].
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	n := shape[0]
	rest := x.Numel() / n
	if train {
		f.inShape = shape
	}
	return x.Clone().Reshape(n, rest)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward called before Forward(train=true)")
	}
	return grad.Clone().Reshape(f.inShape...)
}

// Params returns nil; Flatten has no trainable parameters.
func (f *Flatten) Params() []*Param { return nil }

var (
	_ Layer = (*MaxPool2d)(nil)
	_ Layer = (*GlobalAvgPool2d)(nil)
	_ Layer = (*Flatten)(nil)
)
