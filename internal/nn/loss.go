package nn

import (
	"fmt"
	"math"

	"pipebd/internal/tensor"
)

// MSELoss returns the mean squared error between pred and target together
// with the gradient with respect to pred. This is the per-block
// distillation loss L(Δoutput) from the paper: the student output is
// regressed onto the teacher's output activation.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Numel())
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	var loss float64
	for i := range pd {
		d := float64(pd[i]) - float64(td[i])
		loss += d * d
		gd[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// SoftmaxCrossEntropy returns the mean cross-entropy of logits [N, C]
// against integer labels, plus the gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	shape := logits.Shape()
	if len(shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [N,C] logits, got %v", shape))
	}
	n, c := shape[0], shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch %d", len(labels), n))
	}
	grad := tensor.New(n, c)
	ld, gd := logits.Data(), grad.Data()
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		label := labels[i]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, c))
		}
		loss += logSum - float64(row[label]-maxv)
		for j := 0; j < c; j++ {
			p := math.Exp(float64(row[j]-maxv)) / sum
			if j == label {
				p -= 1
			}
			gd[i*c+j] = float32(p * invN)
		}
	}
	return loss * invN, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := tensor.ArgMaxRow(logits)
	var correct int
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
