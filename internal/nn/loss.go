package nn

import (
	"fmt"
	"math"

	"pipebd/internal/tensor"
)

// MSELoss returns the mean squared error between pred and target together
// with the gradient with respect to pred. This is the per-block
// distillation loss L(Δoutput) from the paper: the student output is
// regressed onto the teacher's output activation.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Numel())
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	var loss float64
	for i := range pd {
		d := float64(pd[i]) - float64(td[i])
		loss += d * d
		gd[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// KLDivLoss is the temperature-scaled knowledge-distillation loss of
// Hinton et al.: T²·KL(softmax(teacher/T) ‖ softmax(student/T)),
// averaged over rows of the trailing dimension, together with the
// gradient with respect to the student logits
// (T·(softmax(student/T) − softmax(teacher/T))/rows — the T² loss scale
// and the 1/T logit scale leave one net factor of T). Teacher logits are
// treated as constants. Softmax rows are max-subtracted with float64
// accumulation, matching SoftmaxLastDim.
func KLDivLoss(student, teacher *tensor.Tensor, temp float64) (float64, *tensor.Tensor) {
	if !student.SameShape(teacher) {
		panic(fmt.Sprintf("nn: KLDivLoss shape mismatch %v vs %v", student.Shape(), teacher.Shape()))
	}
	if temp <= 0 {
		panic(fmt.Sprintf("nn: KLDivLoss temperature %v must be > 0", temp))
	}
	shape := student.Shape()
	c := shape[len(shape)-1]
	rows := student.Numel() / c
	grad := tensor.New(shape...)
	sd, td, gd := student.Data(), teacher.Data(), grad.Data()
	invRows := 1 / float64(rows)
	var loss float64
	logProbs := func(d []float32, lp []float64) {
		maxv := d[0]
		for _, v := range d[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range d {
			lp[j] = float64(v-maxv) / temp
			sum += math.Exp(lp[j])
		}
		logSum := math.Log(sum)
		for j := range lp {
			lp[j] -= logSum
		}
	}
	ls := make([]float64, c)
	lt := make([]float64, c)
	for r := 0; r < rows; r++ {
		logProbs(sd[r*c:(r+1)*c], ls)
		logProbs(td[r*c:(r+1)*c], lt)
		for j := 0; j < c; j++ {
			pt := math.Exp(lt[j])
			loss += pt * (lt[j] - ls[j]) * temp * temp * invRows
			gd[r*c+j] = float32(temp * (math.Exp(ls[j]) - pt) * invRows)
		}
	}
	return loss, grad
}

// SoftmaxCrossEntropy returns the mean cross-entropy of logits [N, C]
// against integer labels, plus the gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	shape := logits.Shape()
	if len(shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [N,C] logits, got %v", shape))
	}
	n, c := shape[0], shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch %d", len(labels), n))
	}
	grad := tensor.New(n, c)
	ld, gd := logits.Data(), grad.Data()
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		label := labels[i]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, c))
		}
		loss += logSum - float64(row[label]-maxv)
		for j := 0; j < c; j++ {
			p := math.Exp(float64(row[j]-maxv)) / sum
			if j == label {
				p -= 1
			}
			gd[i*c+j] = float32(p * invN)
		}
	}
	return loss * invN, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := tensor.ArgMaxRow(logits)
	var correct int
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
