package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"pipebd/internal/tensor"
)

// convPair builds two bit-identical Conv2d layers and routes the second
// through be.
func convPair(t *testing.T, inC, outC, k, stride, pad int, be tensor.Backend) (*Conv2d, *Conv2d) {
	t.Helper()
	ref := NewConv2d(rand.New(rand.NewSource(11)), inC, outC, k, stride, pad, true)
	par := NewConv2d(rand.New(rand.NewSource(11)), inC, outC, k, stride, pad, true)
	ApplyBackend(par, be)
	return ref, par
}

// TestConvBackendParity runs several training steps of the same Conv2d
// on the serial and parallel backends across odd geometries and asserts
// bit-identical outputs, input gradients, and parameter gradients. This
// is the layer-level face of the backend contract: switching backends
// must never change a single bit of the training trajectory.
func TestConvBackendParity(t *testing.T) {
	cases := []struct{ n, inC, outC, h, w, k, stride, pad int }{
		{1, 1, 1, 5, 5, 3, 1, 1},
		{2, 3, 5, 8, 8, 3, 1, 1},
		{3, 4, 2, 7, 9, 3, 2, 1},
		{1, 6, 7, 6, 6, 1, 1, 0},
	}
	parallel := tensor.NewParallel(3)
	for _, cse := range cases {
		label := fmt.Sprintf("%+v", cse)
		ref, par := convPair(t, cse.inC, cse.outC, cse.k, cse.stride, cse.pad, parallel)
		rng := rand.New(rand.NewSource(5))
		for step := 0; step < 3; step++ {
			x := tensor.Rand(rng, -1, 1, cse.n, cse.inC, cse.h, cse.w)
			outRef := ref.Forward(x, true)
			outPar := par.Forward(x.Clone(), true)
			if !outPar.Equal(outRef) {
				t.Fatalf("%s step %d: forward outputs differ between backends", label, step)
			}
			grad := tensor.Rand(rand.New(rand.NewSource(int64(step))), -1, 1, outRef.Shape()...)
			dxRef := ref.Backward(grad)
			dxPar := par.Backward(grad.Clone())
			if !dxPar.Equal(dxRef) {
				t.Fatalf("%s step %d: input gradients differ between backends", label, step)
			}
			pr, pp := ref.Params(), par.Params()
			for i := range pr {
				if !pp[i].Grad.Equal(pr[i].Grad) {
					t.Fatalf("%s step %d: %s gradient differs between backends", label, step, pr[i].Name)
				}
			}
		}
	}
}

// TestLinearBackendParity mirrors TestConvBackendParity for Linear,
// including batch sizes that do not divide evenly across workers.
func TestLinearBackendParity(t *testing.T) {
	parallel := tensor.NewParallel(4)
	for _, batch := range []int{1, 3, 7} {
		ref := NewLinear(rand.New(rand.NewSource(21)), 13, 9, true)
		par := NewLinear(rand.New(rand.NewSource(21)), 13, 9, true)
		ApplyBackend(par, parallel)
		rng := rand.New(rand.NewSource(6))
		for step := 0; step < 3; step++ {
			x := tensor.Rand(rng, -1, 1, batch, 13)
			outRef := ref.Forward(x, true)
			outPar := par.Forward(x.Clone(), true)
			if !outPar.Equal(outRef) {
				t.Fatalf("batch %d step %d: forward outputs differ", batch, step)
			}
			grad := tensor.Rand(rand.New(rand.NewSource(int64(step))), -1, 1, batch, 9)
			if !par.Backward(grad.Clone()).Equal(ref.Backward(grad)) {
				t.Fatalf("batch %d step %d: input gradients differ", batch, step)
			}
			pr, pp := ref.Params(), par.Params()
			for i := range pr {
				if !pp[i].Grad.Equal(pr[i].Grad) {
					t.Fatalf("batch %d step %d: %s gradient differs", batch, step, pr[i].Name)
				}
			}
		}
	}
}

// TestApplyBackendRecurses checks the tree walker reaches layers nested
// in Sequential, Residual, and MixedOp branches.
func TestApplyBackendRecurses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inner := NewConv2d(rng, 3, 3, 3, 1, 1, false)
	branchA := NewSequential(NewConv2d(rng, 3, 3, 1, 1, 0, false))
	branchB := NewResidual(inner)
	mix := NewMixedOp(branchA, branchB)
	model := NewSequential(mix, NewLinearFrom(t, rng))

	be := tensor.NewParallel(2)
	ApplyBackend(model, be)
	if mix.be != be {
		t.Fatal("ApplyBackend did not reach the MixedOp combiner")
	}
	if branchA.Layers[0].(*Conv2d).be != be {
		t.Fatal("ApplyBackend did not reach a Sequential branch child")
	}
	if inner.be != be {
		t.Fatal("ApplyBackend did not reach a Residual body")
	}
	// And behaviourally: forward on the configured tree must stay
	// bit-identical to a serial clone.
	rng2 := rand.New(rand.NewSource(31))
	inner2 := NewConv2d(rng2, 3, 3, 3, 1, 1, false) // same rng draw order as above
	branchA2 := NewSequential(NewConv2d(rng2, 3, 3, 1, 1, 0, false))
	branchB2 := NewResidual(inner2)
	mix2 := NewMixedOp(branchA2, branchB2)
	model2 := NewSequential(mix2, NewLinearFrom(t, rng2))

	x := tensor.Rand(rand.New(rand.NewSource(8)), -1, 1, 2, 3, 6, 6)
	if !model.Forward(x, false).Equal(model2.Forward(x.Clone(), false)) {
		t.Fatal("backend-configured model tree diverged from serial clone")
	}
}

// TestMixedOpIdentityBranchBackward regresses gradient aliasing: an
// identity-like branch (empty Sequential) returns its input from
// Backward, so MixedOp must not share one scaled buffer across branches
// — when the identity branch comes first, dx would alias the buffer and
// the next branch's scale would overwrite the accumulated gradient.
// Asymmetric alphas ensure the corruption cannot cancel arithmetically.
func TestMixedOpIdentityBranchBackward(t *testing.T) {
	mix := NewMixedOp(NewSequential(), NewReLU())
	mix.Alpha.Value.Data()[0] = 1 // w0 != w1
	x := tensor.Rand(rand.New(rand.NewSource(9)), -1, 1, 3, 4)
	mix.Forward(x, true)
	grad := tensor.Rand(rand.New(rand.NewSource(10)), -1, 1, 3, 4)
	dx := mix.Backward(grad)

	// Expected by hand: w0*grad through identity, w1*grad gated by the
	// ReLU mask.
	w := mix.Weights()
	want := tensor.New(3, 4)
	xd, gd, wd := x.Data(), grad.Data(), want.Data()
	for i := range wd {
		wd[i] = float32(w[0]) * gd[i]
		if xd[i] > 0 {
			wd[i] += float32(w[1]) * gd[i]
		}
	}
	if !dx.AllClose(want, 1e-6, 1e-6) {
		t.Fatalf("identity-branch MixedOp dx corrupted:\n got %v\nwant %v", dx, want)
	}
}

// TestConvEvalForwardPreservesBackwardCache regresses the arena scratch
// handling: Forward(train) → Forward(eval) → Backward must differentiate
// the training batch, identically to a twin that never ran the eval pass.
func TestConvEvalForwardPreservesBackwardCache(t *testing.T) {
	ref := NewConv2d(rand.New(rand.NewSource(13)), 3, 4, 3, 1, 1, true)
	probed := NewConv2d(rand.New(rand.NewSource(13)), 3, 4, 3, 1, 1, true)
	rng := rand.New(rand.NewSource(14))
	xTrain := tensor.Rand(rng, -1, 1, 2, 3, 6, 6)
	xEval := tensor.Rand(rng, -1, 1, 5, 3, 6, 6) // different batch size too
	grad := tensor.Rand(rng, -1, 1, 2, 4, 6, 6)

	out := ref.Forward(xTrain, true)
	dxRef := ref.Backward(grad)

	if !probed.Forward(xTrain, true).Equal(out) {
		t.Fatal("twin layers diverged on the training forward")
	}
	probed.Forward(xEval, false) // must not disturb the backward cache
	dx := probed.Backward(grad)
	if !dx.Equal(dxRef) {
		t.Fatal("eval forward between train forward and backward changed the input gradient")
	}
	pr, pp := ref.Params(), probed.Params()
	for i := range pr {
		if !pp[i].Grad.Equal(pr[i].Grad) {
			t.Fatalf("eval forward between train forward and backward changed %s gradient", pr[i].Name)
		}
	}
}

// NewLinearFrom builds the flatten+linear tail used by the walker test.
func NewLinearFrom(t *testing.T, rng *rand.Rand) Layer {
	t.Helper()
	return NewSequential(NewGlobalAvgPool2d(), NewFlatten(), NewLinear(rng, 3, 4, true))
}

// BenchmarkConvForward compares a realistic Conv2d forward pass (im2col +
// GEMM) on the serial and parallel backends across layer widths.
func BenchmarkConvForward(b *testing.B) {
	for _, c := range []int{16, 64} {
		for _, name := range []string{"serial", "parallel"} {
			be, _ := tensor.Lookup(name)
			conv := NewConv2d(rand.New(rand.NewSource(1)), c, c, 3, 1, 1, true)
			ApplyBackend(conv, be)
			x := tensor.Rand(rand.New(rand.NewSource(2)), -1, 1, 8, c, 28, 28)
			b.Run(fmt.Sprintf("c%d/%s", c, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					conv.Forward(x, false)
				}
			})
		}
	}
}

// BenchmarkConvTrainStep measures a full forward+backward step, the unit
// of work runMember executes per block; arena reuse makes the steady
// state allocation-light.
func BenchmarkConvTrainStep(b *testing.B) {
	for _, name := range []string{"serial", "parallel"} {
		be, _ := tensor.Lookup(name)
		conv := NewConv2d(rand.New(rand.NewSource(1)), 32, 32, 3, 1, 1, true)
		ApplyBackend(conv, be)
		x := tensor.Rand(rand.New(rand.NewSource(2)), -1, 1, 8, 32, 14, 14)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := conv.Forward(x, true)
				ZeroGrads(conv.Params())
				conv.Backward(out)
			}
		})
	}
}
