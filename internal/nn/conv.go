package nn

import (
	"fmt"
	"math/rand"

	"pipebd/internal/tensor"
)

// Conv2d is a standard 2-D convolution with square kernels, symmetric
// zero-padding, and optional bias, implemented via the backend's fused
// im2col GEMMs: kernel taps are packed straight from the input into the
// GEMM's panel layout, so no column matrix is ever materialized.
type Conv2d struct {
	InC, OutC, Kernel, Stride, Pad int
	Weight                         *Param // [OutC, InC, K, K]
	Bias                           *Param // [OutC], nil when disabled

	be      tensor.Backend // nil: process default
	scratch *tensor.Arena  // recycles GEMM temporaries across steps

	// Backward cache. The fused conv GEMMs (ConvForwardInto /
	// ConvGradWeightInto) gather kernel taps straight from the input, so
	// the layer no longer materializes an im2col column matrix at all —
	// backward only needs the input tensor itself, which is retained by
	// reference like Linear does.
	lastInput          *tensor.Tensor
	ready              bool // Forward(train=true) ran since last Backward reset
	inN, inH, inW      int
	lastOutH, lastOutW int
}

// NewConv2d constructs a Conv2d with Kaiming-normal weight initialization.
// bias selects whether an additive per-channel bias is trained.
func NewConv2d(rng *rand.Rand, inC, outC, kernel, stride, pad int, bias bool) *Conv2d {
	fanIn := inC * kernel * kernel
	c := &Conv2d{
		InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		Weight: NewParam("conv.weight", tensor.KaimingNormal(rng, fanIn, outC, inC, kernel, kernel)),
	}
	if bias {
		c.Bias = NewParam("conv.bias", tensor.New(outC))
	}
	return c
}

// SetBackend routes the layer's im2col and GEMMs through be (nil
// restores the process default).
func (c *Conv2d) SetBackend(be tensor.Backend) { c.be = be }

func (c *Conv2d) arena() *tensor.Arena {
	if c.scratch == nil {
		c.scratch = tensor.NewArena()
	}
	return c.scratch
}

// Forward computes the convolution of an NCHW input.
func (c *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 || shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2d expects [N,%d,H,W], got %v", c.InC, shape))
	}
	n, h, w := shape[0], shape[2], shape[3]
	oh := tensor.ConvOutSize(h, c.Kernel, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.Kernel, c.Stride, c.Pad)

	be := backendOr(c.be)
	ar := c.arena()
	wm := c.Weight.Value.Reshape(c.OutC, c.InC*c.Kernel*c.Kernel)
	flat := ar.Get(c.OutC, n*oh*ow)
	be.ConvForwardInto(flat, wm, x, c.Kernel, c.Kernel, c.Stride, c.Pad) // [OutC, N*OH*OW]

	out := flatToNCHW(flat, n, c.OutC, oh, ow)
	ar.Release(flat) // copied into out; safe to recycle immediately
	if c.Bias != nil {
		addChannelBias(out, c.Bias.Value)
	}
	if train {
		c.lastInput = x
		c.ready = true
		c.inN, c.inH, c.inW = n, h, w
		c.lastOutH, c.lastOutW = oh, ow
	}
	// Evaluation forwards leave the backward cache untouched:
	// Forward(train) → Forward(eval) → Backward still differentiates the
	// training batch.
	return out
}

// Backward propagates grad (NCHW) and accumulates dWeight/dBias.
func (c *Conv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !c.ready {
		panic("nn: Conv2d.Backward called before Forward(train=true)")
	}
	be := backendOr(c.be)
	ar := c.arena()
	kk := c.InC * c.Kernel * c.Kernel
	spatial := c.inN * c.lastOutH * c.lastOutW

	dFlat := ar.Get(c.OutC, spatial) // [OutC, N*OH*OW]
	nchwToFlatInto(dFlat, grad, c.OutC)

	// dW = dFlat · im2col(x)ᵀ, gathered straight from the cached input
	// and folded back to [OutC, InC, K, K].
	dW := ar.Get(c.OutC, kk)
	be.ConvGradWeightInto(dW, dFlat, c.lastInput, c.Kernel, c.Kernel, c.Stride, c.Pad)
	be.Axpy(c.Weight.Grad, 1, dW.Reshape(c.Weight.Value.Shape()...))

	if c.Bias != nil {
		accumulateChannelBiasGrad(c.Bias.Grad, grad)
	}

	// dx = Col2Im(Wᵀ · dFlat).
	wm := c.Weight.Value.Reshape(c.OutC, kk)
	dCols := ar.Get(kk, spatial)
	be.MatMulTAInto(dCols, wm, dFlat)
	dx := tensor.New(c.inN, c.InC, c.inH, c.inW)
	be.Col2ImInto(dx, dCols, c.Kernel, c.Kernel, c.Stride, c.Pad)
	ar.Release(dFlat, dW, dCols)
	return dx
}

// Params returns weight (and bias when present).
func (c *Conv2d) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// DWConv2d is a depthwise 2-D convolution (channel multiplier 1): each
// input channel is convolved with its own K×K filter.
type DWConv2d struct {
	C, Kernel, Stride, Pad int
	Weight                 *Param // [C, 1, K, K]
	Bias                   *Param // [C], nil when disabled

	lastInput *tensor.Tensor
}

// NewDWConv2d constructs a depthwise convolution with Kaiming init.
func NewDWConv2d(rng *rand.Rand, c, kernel, stride, pad int, bias bool) *DWConv2d {
	l := &DWConv2d{
		C: c, Kernel: kernel, Stride: stride, Pad: pad,
		Weight: NewParam("dwconv.weight", tensor.KaimingNormal(rng, kernel*kernel, c, 1, kernel, kernel)),
	}
	if bias {
		l.Bias = NewParam("dwconv.bias", tensor.New(c))
	}
	return l
}

// Forward computes the depthwise convolution of an NCHW input.
func (d *DWConv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 || shape[1] != d.C {
		panic(fmt.Sprintf("nn: DWConv2d expects [N,%d,H,W], got %v", d.C, shape))
	}
	n, h, w := shape[0], shape[2], shape[3]
	oh := tensor.ConvOutSize(h, d.Kernel, d.Stride, d.Pad)
	ow := tensor.ConvOutSize(w, d.Kernel, d.Stride, d.Pad)
	out := tensor.New(n, d.C, oh, ow)
	xd, od, wd := x.Data(), out.Data(), d.Weight.Value.Data()
	k := d.Kernel
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < d.C; ci++ {
			inBase := (ni*d.C + ci) * h * w
			outBase := (ni*d.C + ci) * oh * ow
			wBase := ci * k * k
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					var s float32
					for ki := 0; ki < k; ki++ {
						ih := oi*d.Stride - d.Pad + ki
						if ih < 0 || ih >= h {
							continue
						}
						for kj := 0; kj < k; kj++ {
							iw := oj*d.Stride - d.Pad + kj
							if iw < 0 || iw >= w {
								continue
							}
							s += xd[inBase+ih*w+iw] * wd[wBase+ki*k+kj]
						}
					}
					od[outBase+oi*ow+oj] = s
				}
			}
		}
	}
	if d.Bias != nil {
		addChannelBias(out, d.Bias.Value)
	}
	if train {
		d.lastInput = x
	}
	return out
}

// Backward propagates grad and accumulates parameter gradients.
func (d *DWConv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastInput == nil {
		panic("nn: DWConv2d.Backward called before Forward(train=true)")
	}
	x := d.lastInput
	n, h, w := x.Shape()[0], x.Shape()[2], x.Shape()[3]
	oh, ow := grad.Shape()[2], grad.Shape()[3]
	dx := tensor.New(n, d.C, h, w)
	xd, gd := x.Data(), grad.Data()
	dxd, dwd := dx.Data(), d.Weight.Grad.Data()
	wd := d.Weight.Value.Data()
	k := d.Kernel
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < d.C; ci++ {
			inBase := (ni*d.C + ci) * h * w
			outBase := (ni*d.C + ci) * oh * ow
			wBase := ci * k * k
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					g := gd[outBase+oi*ow+oj]
					if g == 0 {
						continue
					}
					for ki := 0; ki < k; ki++ {
						ih := oi*d.Stride - d.Pad + ki
						if ih < 0 || ih >= h {
							continue
						}
						for kj := 0; kj < k; kj++ {
							iw := oj*d.Stride - d.Pad + kj
							if iw < 0 || iw >= w {
								continue
							}
							dwd[wBase+ki*k+kj] += g * xd[inBase+ih*w+iw]
							dxd[inBase+ih*w+iw] += g * wd[wBase+ki*k+kj]
						}
					}
				}
			}
		}
	}
	if d.Bias != nil {
		accumulateChannelBiasGrad(d.Bias.Grad, grad)
	}
	return dx
}

// Params returns weight (and bias when present).
func (d *DWConv2d) Params() []*Param {
	if d.Bias != nil {
		return []*Param{d.Weight, d.Bias}
	}
	return []*Param{d.Weight}
}

// flatToNCHW rearranges [C, N*OH*OW] (im2col result layout) to NCHW.
func flatToNCHW(flat *tensor.Tensor, n, c, oh, ow int) *tensor.Tensor {
	out := tensor.New(n, c, oh, ow)
	fd, od := flat.Data(), out.Data()
	spatial := oh * ow
	for ci := 0; ci < c; ci++ {
		rowBase := ci * n * spatial
		for ni := 0; ni < n; ni++ {
			copy(od[(ni*c+ci)*spatial:(ni*c+ci+1)*spatial], fd[rowBase+ni*spatial:rowBase+(ni+1)*spatial])
		}
	}
	return out
}

// nchwToFlat rearranges NCHW to [C, N*OH*OW].
func nchwToFlat(x *tensor.Tensor, c int) *tensor.Tensor {
	n, oh, ow := x.Shape()[0], x.Shape()[2], x.Shape()[3]
	out := tensor.New(c, n*oh*ow)
	nchwToFlatInto(out, x, c)
	return out
}

// nchwToFlatInto rearranges NCHW into a preallocated [C, N*OH*OW] tensor,
// overwriting every element.
func nchwToFlatInto(out, x *tensor.Tensor, c int) {
	n, oh, ow := x.Shape()[0], x.Shape()[2], x.Shape()[3]
	spatial := oh * ow
	xd, od := x.Data(), out.Data()
	for ci := 0; ci < c; ci++ {
		rowBase := ci * n * spatial
		for ni := 0; ni < n; ni++ {
			copy(od[rowBase+ni*spatial:rowBase+(ni+1)*spatial], xd[(ni*c+ci)*spatial:(ni*c+ci+1)*spatial])
		}
	}
}

func addChannelBias(x *tensor.Tensor, bias *tensor.Tensor) {
	n, c := x.Shape()[0], x.Shape()[1]
	spatial := x.Shape()[2] * x.Shape()[3]
	xd, bd := x.Data(), bias.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			b := bd[ci]
			base := (ni*c + ci) * spatial
			for i := 0; i < spatial; i++ {
				xd[base+i] += b
			}
		}
	}
}

func accumulateChannelBiasGrad(dst *tensor.Tensor, grad *tensor.Tensor) {
	n, c := grad.Shape()[0], grad.Shape()[1]
	spatial := grad.Shape()[2] * grad.Shape()[3]
	gd, dd := grad.Data(), dst.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * spatial
			var s float32
			for i := 0; i < spatial; i++ {
				s += gd[base+i]
			}
			dd[ci] += s
		}
	}
}

var (
	_ Layer       = (*Conv2d)(nil)
	_ Layer       = (*DWConv2d)(nil)
	_ BackendUser = (*Conv2d)(nil)
)
