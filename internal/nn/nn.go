// Package nn implements the small neural-network runtime used by the
// numeric Pipe-BD engine: layers with explicit forward/backward passes,
// trainable parameters, losses, and an SGD optimizer.
//
// The design is deliberately tape-free: every Layer caches what it needs
// during Forward and consumes that cache in Backward. This matches the
// strictly layer-sequential structure of blockwise distillation (each
// student block is a chain owned by exactly one device) and keeps the
// backward pass deterministic, which the bit-equivalence experiments rely
// on. A Layer must not be shared between goroutines during training.
package nn

import "pipebd/internal/tensor"

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zero gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Backward must be called after Forward
// on the same input batch; it returns the gradient with respect to the
// layer's input and accumulates parameter gradients into Params().
type Layer interface {
	// Forward computes the layer output. train selects training-mode
	// behaviour (e.g. batch statistics in BatchNorm) and enables the
	// caching required by Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input gradient,
	// accumulating parameter gradients along the way.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// BackendUser is implemented by layers whose hot path runs on a
// tensor.Backend (Linear, Conv2d, MixedOp). A nil backend means "use the
// process default at call time".
type BackendUser interface {
	SetBackend(be tensor.Backend)
}

// ApplyBackend routes l and every nested layer through be, recursing into
// containers (Sequential, Residual, MixedOp branches). Layers that do not
// use a backend are left untouched. Because all backends are bit-identical
// by contract, ApplyBackend never changes results — only how fast the
// host computes them.
func ApplyBackend(l Layer, be tensor.Backend) {
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			ApplyBackend(c, be)
		}
	case *Residual:
		ApplyBackend(v.Body, be)
	case *MixedOp:
		v.SetBackend(be)
		for _, c := range v.Branches {
			ApplyBackend(c, be)
		}
	default:
		if u, ok := l.(BackendUser); ok {
			u.SetBackend(be)
		}
	}
}

// backendOr resolves a layer's configured backend, falling back to the
// process default.
func backendOr(be tensor.Backend) tensor.Backend {
	if be != nil {
		return be
	}
	return tensor.Default()
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates gradients in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

var _ Layer = (*Sequential)(nil)
