package nn

import (
	"fmt"
	"math"

	"pipebd/internal/tensor"
)

// MixedOp is a differentiable NAS cell: candidate operations combined by
// a softmax over trainable architecture parameters,
//
//	y = Σ_i softmax(α)_i · branch_i(x).
//
// This is the formulation the paper describes for its NAS workload
// ("multiple candidate operations in each layer are associated with a
// trainable architecture parameter, representing the probability of
// selecting the operation"). After search, the branch with the largest α
// is selected as the found architecture (Derive).
//
// All branches must preserve output shape. Alpha gradients flow through
// the softmax Jacobian; branch gradients are scaled by their weights.
type MixedOp struct {
	Branches []Layer
	Alpha    *Param // [len(Branches)]

	be tensor.Backend // nil: process default

	// Backward cache.
	weights    []float64        // softmax(alpha) of the last forward
	branchOuts []*tensor.Tensor // per-branch outputs of the last forward
}

// NewMixedOp builds a MixedOp over the given branches with uniform
// initial architecture parameters (α = 0).
func NewMixedOp(branches ...Layer) *MixedOp {
	if len(branches) < 2 {
		panic("nn: MixedOp needs at least two candidate branches")
	}
	return &MixedOp{
		Branches: branches,
		Alpha:    NewParam("mixedop.alpha", tensor.New(len(branches))),
	}
}

// softmaxAlpha returns softmax(α) in float64.
func (m *MixedOp) softmaxAlpha() []float64 {
	a := m.Alpha.Value.Data()
	maxv := a[0]
	for _, v := range a[1:] {
		if v > maxv {
			maxv = v
		}
	}
	w := make([]float64, len(a))
	var sum float64
	for i, v := range a {
		w[i] = math.Exp(float64(v - maxv))
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// SetBackend routes the combination arithmetic through be (nil restores
// the process default). Branch layers are configured separately; use
// ApplyBackend to set a whole tree at once.
func (m *MixedOp) SetBackend(be tensor.Backend) { m.be = be }

// Forward computes the weighted sum of all candidate outputs.
func (m *MixedOp) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	weights := m.softmaxAlpha()
	be := backendOr(m.be)
	var out *tensor.Tensor
	var outs []*tensor.Tensor
	for i, b := range m.Branches {
		y := b.Forward(x, train)
		if out == nil {
			out = tensor.New(y.Shape()...)
		} else if !y.SameShape(out) {
			panic(fmt.Sprintf("nn: MixedOp branch %d output %v mismatches %v", i, y.Shape(), out.Shape()))
		}
		be.Axpy(out, float32(weights[i]), y)
		if train {
			outs = append(outs, y)
		}
	}
	if train {
		m.weights, m.branchOuts = weights, outs
	}
	return out
}

// Backward propagates through every branch (scaled by its weight) and
// accumulates the architecture-parameter gradient through the softmax
// Jacobian: dα_i = w_i (s_i − Σ_j w_j s_j) with s_i = <grad, branch_i(x)>.
func (m *MixedOp) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.branchOuts == nil {
		panic("nn: MixedOp.Backward called before Forward(train=true)")
	}
	// Branch-output inner products with the incoming gradient.
	s := make([]float64, len(m.Branches))
	gd := grad.Data()
	for i, y := range m.branchOuts {
		yd := y.Data()
		var dot float64
		for k := range gd {
			dot += float64(gd[k]) * float64(yd[k])
		}
		s[i] = dot
	}
	var sBar float64
	for i, w := range m.weights {
		sBar += w * s[i]
	}
	ad := m.Alpha.Grad.Data()
	for i, w := range m.weights {
		ad[i] += float32(w * (s[i] - sBar))
	}

	// Input gradient: sum of branch backwards on weight-scaled grads.
	// Each branch gets its own scaled buffer: an identity-like branch
	// (e.g. an empty Sequential) returns its input from Backward, so a
	// shared buffer would alias dx and corrupt the accumulation.
	be := backendOr(m.be)
	var dx *tensor.Tensor
	for i, b := range m.Branches {
		scaled := tensor.New(grad.Shape()...)
		be.Scale(scaled, grad, float32(m.weights[i]))
		d := b.Backward(scaled)
		if dx == nil {
			dx = d
		} else {
			be.Axpy(dx, 1, d)
		}
	}
	return dx
}

// Params returns every branch's parameters plus α.
func (m *MixedOp) Params() []*Param {
	ps := []*Param{m.Alpha}
	for _, b := range m.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Weights returns the current candidate probabilities softmax(α).
func (m *MixedOp) Weights() []float64 { return m.softmaxAlpha() }

// Derive returns the index of the most probable candidate — the found
// architecture choice after search.
func (m *MixedOp) Derive() int {
	w := m.softmaxAlpha()
	best := 0
	for i, v := range w {
		if v > w[best] {
			best = i
		}
	}
	return best
}

var (
	_ Layer       = (*MixedOp)(nil)
	_ BackendUser = (*MixedOp)(nil)
)
