package nn

import (
	"fmt"

	"pipebd/internal/tensor"
)

// ReLU is max(0, x). Cap < 0 disables the upper clamp; Cap = 6 yields the
// ReLU6 used throughout MobileNet-family models.
type ReLU struct {
	Cap float32 // upper clamp; <= 0 means unbounded

	mask []bool // true where the gradient passes through
}

// NewReLU returns an unbounded rectifier.
func NewReLU() *ReLU { return &ReLU{Cap: -1} }

// NewReLU6 returns the clamped rectifier min(max(0,x),6).
func NewReLU6() *ReLU { return &ReLU{Cap: 6} }

// Forward clamps the input elementwise.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	var mask []bool
	if train {
		mask = make([]bool, len(xd))
	}
	for i, v := range xd {
		pass := v > 0 && (r.Cap <= 0 || v < r.Cap)
		switch {
		case v <= 0:
			od[i] = 0
		case r.Cap > 0 && v >= r.Cap:
			od[i] = r.Cap
		default:
			od[i] = v
		}
		if train {
			mask[i] = pass
		}
	}
	// An eval-mode forward invalidates any cached mask: a Backward after
	// it would otherwise gate with state from a stale (possibly
	// differently-shaped) batch.
	r.mask = mask
	return out
}

// Backward gates the gradient by the forward-pass mask.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called before Forward(train=true)")
	}
	gd := grad.Data()
	if len(r.mask) != len(gd) {
		panic(fmt.Sprintf("nn: ReLU.Backward grad has %d elements but cached mask has %d (stale forward?)", len(gd), len(r.mask)))
	}
	out := tensor.New(grad.Shape()...)
	od := out.Data()
	for i, pass := range r.mask {
		if pass {
			od[i] = gd[i]
		}
	}
	return out
}

// Params returns nil; ReLU has no trainable parameters.
func (r *ReLU) Params() []*Param { return nil }

var _ Layer = (*ReLU)(nil)
