package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipebd/internal/tensor"
)

func newTestMixedOp(rng *rand.Rand) *MixedOp {
	return NewMixedOp(
		NewConv2d(rng, 3, 3, 3, 1, 1, false),
		NewSequential(NewDWConv2d(rng, 3, 3, 1, 1, false), NewConv2d(rng, 3, 3, 1, 1, 0, false)),
	)
}

func TestMixedOpUniformInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := newTestMixedOp(rng)
	w := m.Weights()
	if math.Abs(w[0]-0.5) > 1e-9 || math.Abs(w[1]-0.5) > 1e-9 {
		t.Fatalf("initial weights %v, want uniform", w)
	}
}

func TestMixedOpForwardIsWeightedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := newTestMixedOp(rng)
	// Bias α toward branch 0 heavily: output approaches branch 0's.
	m.Alpha.Value.Data()[0] = 20
	x := tensor.Rand(rng, -1, 1, 2, 3, 5, 5)
	y := m.Forward(x, false)
	b0 := m.Branches[0].Forward(x, false)
	if !y.AllClose(b0, 1e-4, 1e-4) {
		t.Fatal("with α0 >> α1, MixedOp must reduce to branch 0")
	}
}

func TestMixedOpGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := newTestMixedOp(rng)
	// Non-uniform α so softmax Jacobian terms are non-trivial.
	m.Alpha.Value.Data()[0] = 0.3
	m.Alpha.Value.Data()[1] = -0.2
	checkGradients(t, "MixedOp", m, tensor.Rand(rng, -1, 1, 2, 3, 4, 4))
}

func TestMixedOpAlphaGradSumsToZero(t *testing.T) {
	// The softmax Jacobian projects onto the simplex tangent space, so
	// dα must sum to zero.
	rng := rand.New(rand.NewSource(4))
	m := newTestMixedOp(rng)
	x := tensor.Rand(rng, -1, 1, 2, 3, 4, 4)
	out := m.Forward(x, true)
	ZeroGrads(m.Params())
	m.Backward(tensor.Rand(rng, -1, 1, out.Shape()...))
	var sum float64
	for _, g := range m.Alpha.Grad.Data() {
		sum += float64(g)
	}
	if math.Abs(sum) > 1e-5 {
		t.Fatalf("alpha gradient sums to %v, want 0", sum)
	}
}

func TestMixedOpParamsIncludeAlphaAndBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := newTestMixedOp(rng)
	ps := m.Params()
	// alpha + conv weight + (dw weight + pw weight)
	if len(ps) != 4 {
		t.Fatalf("got %d params, want 4", len(ps))
	}
	if ps[0] != m.Alpha {
		t.Fatal("alpha must be exposed as a trainable parameter")
	}
}

func TestMixedOpDerive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := newTestMixedOp(rng)
	m.Alpha.Value.Data()[1] = 3
	if m.Derive() != 1 {
		t.Fatal("Derive must pick the max-α branch")
	}
}

func TestMixedOpLearnsToPreferBetterBranch(t *testing.T) {
	// Target function equals branch 0 (a plain conv); training the α
	// parameters against it must shift probability onto branch 0.
	rng := rand.New(rand.NewSource(7))
	target := NewConv2d(rng, 3, 3, 3, 1, 1, false)
	m := NewMixedOp(
		NewConv2d(rng, 3, 3, 3, 1, 1, false),
		NewConv2d(rng, 3, 3, 1, 1, 0, false), // 1x1 conv: weaker candidate
	)
	// Make branch 0 exactly the target (same weights), branch 1 cannot
	// represent it.
	m.Branches[0].(*Conv2d).Weight.Value.CopyFrom(target.Weight.Value)

	opt := NewSGD(0.5, 0, 0)
	x := tensor.Rand(rng, -1, 1, 4, 3, 6, 6)
	want := target.Forward(x, false)
	for step := 0; step < 60; step++ {
		ZeroGrads([]*Param{m.Alpha})
		y := m.Forward(x, true)
		_, grad := MSELoss(y, want)
		m.Backward(grad)
		// Architecture-only update (weights frozen), DARTS-style round.
		opt.Step([]*Param{m.Alpha})
	}
	w := m.Weights()
	if w[0] < 0.9 {
		t.Fatalf("architecture search failed: weights %v, want branch 0 dominant", w)
	}
	if m.Derive() != 0 {
		t.Fatal("derived architecture should be branch 0")
	}
}

func TestMixedOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for single branch")
		}
	}()
	NewMixedOp(NewReLU())
}

func TestMixedOpBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := newTestMixedOp(rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Backward(tensor.New(1, 3, 4, 4))
}
