package nn

import (
	"fmt"
	"math"

	"pipebd/internal/tensor"
)

// BatchNorm2d normalizes each channel over the (N, H, W) axes with learned
// per-channel scale and shift, maintaining running statistics for
// evaluation mode.
type BatchNorm2d struct {
	C        int
	Eps      float64
	Momentum float64 // running-stats update rate, PyTorch convention

	Gamma, Beta             *Param         // [C]
	RunningMean, RunningVar *tensor.Tensor // [C]

	// Backward cache.
	xhat   *tensor.Tensor
	invStd []float64
}

// NewBatchNorm2d constructs a BatchNorm2d with gamma=1, beta=0 and unit
// running variance, matching common framework defaults.
func NewBatchNorm2d(c int) *BatchNorm2d {
	return &BatchNorm2d{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam("bn.gamma", tensor.Ones(c)),
		Beta:        NewParam("bn.beta", tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
	}
}

// Forward normalizes x. In training mode it uses batch statistics and
// updates running statistics; in evaluation mode it uses the running ones.
func (b *BatchNorm2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 || shape[1] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm2d expects [N,%d,H,W], got %v", b.C, shape))
	}
	n, h, w := shape[0], shape[2], shape[3]
	spatial := h * w
	count := float64(n * spatial)
	out := tensor.New(shape...)
	xd, od := x.Data(), out.Data()
	gd, bd := b.Gamma.Value.Data(), b.Beta.Value.Data()

	var xhat *tensor.Tensor
	var invStds []float64
	if train {
		xhat = tensor.New(shape...)
		invStds = make([]float64, b.C)
	}

	for ci := 0; ci < b.C; ci++ {
		var mean, variance float64
		if train {
			var sum float64
			for ni := 0; ni < n; ni++ {
				base := (ni*b.C + ci) * spatial
				for i := 0; i < spatial; i++ {
					sum += float64(xd[base+i])
				}
			}
			mean = sum / count
			var sq float64
			for ni := 0; ni < n; ni++ {
				base := (ni*b.C + ci) * spatial
				for i := 0; i < spatial; i++ {
					d := float64(xd[base+i]) - mean
					sq += d * d
				}
			}
			variance = sq / count
			rm, rv := b.RunningMean.Data(), b.RunningVar.Data()
			rm[ci] = float32((1-b.Momentum)*float64(rm[ci]) + b.Momentum*mean)
			rv[ci] = float32((1-b.Momentum)*float64(rv[ci]) + b.Momentum*variance)
		} else {
			mean = float64(b.RunningMean.Data()[ci])
			variance = float64(b.RunningVar.Data()[ci])
		}
		invStd := 1 / math.Sqrt(variance+b.Eps)
		if train {
			invStds[ci] = invStd
		}
		g, bt := float64(gd[ci]), float64(bd[ci])
		for ni := 0; ni < n; ni++ {
			base := (ni*b.C + ci) * spatial
			for i := 0; i < spatial; i++ {
				xh := (float64(xd[base+i]) - mean) * invStd
				if train {
					xhat.Data()[base+i] = float32(xh)
				}
				od[base+i] = float32(g*xh + bt)
			}
		}
	}
	if train {
		b.xhat, b.invStd = xhat, invStds
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.xhat == nil {
		panic("nn: BatchNorm2d.Backward called before Forward(train=true)")
	}
	shape := grad.Shape()
	n, spatial := shape[0], shape[2]*shape[3]
	count := float64(n * spatial)
	out := tensor.New(shape...)
	gd := grad.Data()
	xh := b.xhat.Data()
	od := out.Data()
	gammaD := b.Gamma.Value.Data()
	dGamma, dBeta := b.Gamma.Grad.Data(), b.Beta.Grad.Data()

	for ci := 0; ci < b.C; ci++ {
		var sumDy, sumDyXhat float64
		for ni := 0; ni < n; ni++ {
			base := (ni*b.C + ci) * spatial
			for i := 0; i < spatial; i++ {
				dy := float64(gd[base+i])
				sumDy += dy
				sumDyXhat += dy * float64(xh[base+i])
			}
		}
		dGamma[ci] += float32(sumDyXhat)
		dBeta[ci] += float32(sumDy)
		g := float64(gammaD[ci]) * b.invStd[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*b.C + ci) * spatial
			for i := 0; i < spatial; i++ {
				dy := float64(gd[base+i])
				xhv := float64(xh[base+i])
				od[base+i] = float32(g * (dy - sumDy/count - xhv*sumDyXhat/count))
			}
		}
	}
	return out
}

// Params returns gamma and beta.
func (b *BatchNorm2d) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

var _ Layer = (*BatchNorm2d)(nil)
