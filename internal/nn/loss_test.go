package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipebd/internal/tensor"
)

func TestMSELossZeroAtTarget(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3}, 3)
	loss, grad := MSELoss(x, x.Clone())
	if loss != 0 {
		t.Fatalf("MSE(x,x) = %v, want 0", loss)
	}
	for _, g := range grad.Data() {
		if g != 0 {
			t.Fatal("gradient at minimum must be zero")
		}
	}
}

func TestMSELossKnownValue(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2}, 2)
	q := tensor.FromSlice([]float32{3, 2}, 2)
	loss, grad := MSELoss(p, q)
	if math.Abs(loss-2) > 1e-9 { // ((1-3)² + 0)/2 = 2
		t.Fatalf("MSE = %v, want 2", loss)
	}
	// grad = 2*(p-q)/n = [-2, 0]
	if grad.Data()[0] != -2 || grad.Data()[1] != 0 {
		t.Fatalf("grad = %v, want [-2 0]", grad.Data())
	}
}

func TestMSELossNonNegativityProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		clean := make([]float32, len(vals))
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			clean[i] = float32(math.Mod(float64(v), 50))
		}
		p := tensor.FromSlice(clean, len(clean))
		q := tensor.New(len(clean))
		loss, _ := MSELoss(p, q)
		return loss >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSELossGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := tensor.Rand(rng, -2, 2, 6)
	q := tensor.Rand(rng, -2, 2, 6)
	_, grad := MSELoss(p, q)
	const eps = 1e-2
	for i := 0; i < 6; i++ {
		probe := func(d float32) float64 {
			pp := p.Clone()
			pp.Data()[i] += d
			l, _ := MSELoss(pp, q)
			return l
		}
		numeric := (probe(eps) - probe(-eps)) / (2 * eps)
		if math.Abs(numeric-float64(grad.Data()[i])) > 1e-3 {
			t.Fatalf("MSE grad[%d]: analytic %v numeric %v", i, grad.Data()[i], numeric)
		}
	}
}

func TestSoftmaxCrossEntropyUniformLogits(t *testing.T) {
	logits := tensor.New(2, 4) // all zeros -> uniform distribution
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("CE = %v, want ln(4) = %v", loss, want)
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	// Each row's gradient must sum to zero (softmax probabilities sum to
	// one and the label subtracts exactly one).
	rng := rand.New(rand.NewSource(2))
	logits := tensor.Rand(rng, -3, 3, 5, 7)
	labels := []int{0, 1, 2, 3, 4}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	for r := 0; r < 5; r++ {
		var s float64
		for c := 0; c < 7; c++ {
			s += float64(grad.At(r, c))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("row %d gradient sums to %v, want 0", r, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.Rand(rng, -2, 2, 3, 4)
	labels := []int{1, 3, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-2
	for i := 0; i < logits.Numel(); i++ {
		probe := func(d float32) float64 {
			lp := logits.Clone()
			lp.Data()[i] += d
			l, _ := SoftmaxCrossEntropy(lp, labels)
			return l
		}
		numeric := (probe(eps) - probe(-eps)) / (2 * eps)
		if math.Abs(numeric-float64(grad.Data()[i])) > 1e-3 {
			t.Fatalf("CE grad[%d]: analytic %v numeric %v", i, grad.Data()[i], numeric)
		}
	}
}

func TestSoftmaxCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{5})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 5, 0,
		9, 0, 0,
		0, 0, 2,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v, want 2/3", got)
	}
}
