package nn

import (
	"math/rand"
	"strings"
	"testing"

	"pipebd/internal/tensor"
)

// Regression tests for the stale-activation-cache bug: a train-mode
// Forward followed by an eval-mode Forward (teacher inference, metrics, a
// differently shaped probe batch) used to leave the training cache from
// the first batch in place, so a subsequent Backward silently gated with
// the wrong mask — or indexed out of range on a shape change. Every
// caching layer must now invalidate its cache on eval forwards and
// length-check it in Backward.

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			if err, isErr := r.(error); isErr {
				msg = err.Error()
			}
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

// TestReLUEvalForwardInvalidatesMask is the original bug: train forward,
// eval forward, then backward. The eval forward must clear the mask so
// the backward fails loudly instead of applying batch-1 gating to
// batch-2 gradients.
func TestReLUEvalForwardInvalidatesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReLU()
	r.Forward(tensor.Rand(rng, -1, 1, 2, 3), true)
	r.Forward(tensor.Rand(rng, -1, 1, 2, 3), false)
	mustPanic(t, "before Forward(train=true)", func() {
		r.Backward(tensor.Rand(rng, -1, 1, 2, 3))
	})
}

// TestReLUShapeMismatchCaught: a train forward on one shape followed by a
// backward for another must be rejected by the length check rather than
// silently gating a prefix (or panicking with a bare index error).
func TestReLUShapeMismatchCaught(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewReLU()
	r.Forward(tensor.Rand(rng, -1, 1, 4, 4), true)
	mustPanic(t, "stale forward", func() {
		r.Backward(tensor.Rand(rng, -1, 1, 2, 3))
	})
}

// TestReLUTrainEvalTrainBackward: the legitimate sequence — train, eval,
// train, backward — must keep working, with the backward consuming the
// second train forward's mask.
func TestReLUTrainEvalTrainBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewReLU()
	r.Forward(tensor.Rand(rng, -1, 1, 2, 2), true)
	r.Forward(tensor.Rand(rng, -1, 1, 5, 5), false)
	x := tensor.Rand(rng, -1, 1, 3, 3)
	out := r.Forward(x, true)
	grad := tensor.Rand(rng, -1, 1, 3, 3)
	dx := r.Backward(grad)
	for i, v := range x.Data() {
		want := float32(0)
		if out.Data()[i] > 0 {
			want = grad.Data()[i]
		}
		if dx.Data()[i] != want {
			t.Fatalf("element %d (x=%v): got %v want %v", i, v, dx.Data()[i], want)
		}
	}
}

// TestTransformerCachesInvalidatedByEvalForward applies the same guard
// contract to every caching layer the transformer workload introduced.
func TestTransformerCachesInvalidatedByEvalForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		name  string
		layer Layer
		input func() *tensor.Tensor
	}{
		{"GELU", NewGELU(), func() *tensor.Tensor { return tensor.Rand(rng, -1, 1, 2, 3) }},
		{"LayerNorm", NewLayerNorm(4), func() *tensor.Tensor { return tensor.Rand(rng, -1, 1, 2, 4) }},
		{"MHA", NewMultiHeadAttention(rng, 4, 2), func() *tensor.Tensor { return tensor.Rand(rng, -1, 1, 2, 3, 4) }},
		{"MeanPoolSeq", NewMeanPoolSeq(), func() *tensor.Tensor { return tensor.Rand(rng, -1, 1, 2, 3, 4) }},
		{"Embedding", NewEmbedding(rng, 5, 3, 4), func() *tensor.Tensor {
			ids := tensor.New(2, 3)
			for i := range ids.Data() {
				ids.Data()[i] = float32(rng.Intn(5))
			}
			return ids
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := c.input()
			out := c.layer.Forward(x, true)
			c.layer.Forward(c.input(), false)
			mustPanic(t, "before Forward(train=true)", func() {
				c.layer.Backward(tensor.New(out.Shape()...))
			})
			// And after a fresh train forward the backward runs again.
			out = c.layer.Forward(x, true)
			c.layer.Backward(tensor.New(out.Shape()...))
		})
	}
}

// TestTransformerCachesLengthChecked: shape-changing train forwards are
// legal (the cache is replaced), but a backward whose gradient shape
// disagrees with the cache must fail the length check.
func TestTransformerCachesLengthChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGELU()
	g.Forward(tensor.Rand(rng, -1, 1, 2, 3), true)
	mustPanic(t, "stale forward", func() { g.Backward(tensor.Rand(rng, -1, 1, 4, 4)) })

	ln := NewLayerNorm(4)
	ln.Forward(tensor.Rand(rng, -1, 1, 2, 4), true)
	mustPanic(t, "stale forward", func() { ln.Backward(tensor.Rand(rng, -1, 1, 3, 4)) })

	a := NewMultiHeadAttention(rng, 4, 2)
	a.Forward(tensor.Rand(rng, -1, 1, 2, 3, 4), true)
	mustPanic(t, "stale forward", func() { a.Backward(tensor.Rand(rng, -1, 1, 1, 3, 4)) })

	e := NewEmbedding(rng, 5, 3, 4)
	ids := tensor.New(2, 3)
	e.Forward(ids, true)
	mustPanic(t, "stale forward", func() { e.Backward(tensor.Rand(rng, -1, 1, 1, 3, 4)) })
}
