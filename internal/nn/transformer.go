package nn

import (
	"fmt"
	"math"
	"math/rand"

	"pipebd/internal/tensor"
)

// Transformer building blocks. Hidden states flow between layers (and
// between pipeline blocks) as [N, L, D] tensors — batch outermost, so the
// engine's batch sharding and the wire codec treat them exactly like conv
// activations. Token ids enter as [N, L] float32 tensors holding integer
// values, which keeps the dataset, wire, and engine paths type-free.
//
// Every layer follows the package's tape-free cache discipline, with the
// guard introduced alongside the ReLU stale-mask fix: an eval-mode
// Forward invalidates the training cache, and Backward validates the
// cached sizes against the incoming gradient before touching them.

// --- softmax -----------------------------------------------------------------

// SoftmaxLastDim returns softmax over the last dimension, max-subtracted
// per row with float64 accumulation: the numerics every softmax consumer
// in the package (attention, KL loss) shares.
func SoftmaxLastDim(x *tensor.Tensor) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) == 0 {
		panic("nn: SoftmaxLastDim on scalar tensor")
	}
	d := shape[len(shape)-1]
	out := tensor.New(shape...)
	xd, od := x.Data(), out.Data()
	for r := 0; r < len(xd); r += d {
		row, orow := xd[r:r+d], od[r:r+d]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		inv := 1 / sum
		for j, v := range row {
			orow[j] = float32(math.Exp(float64(v-maxv)) * inv)
		}
	}
	return out
}

// SoftmaxBackwardLastDim propagates a gradient through SoftmaxLastDim:
// dLogits = probs ⊙ (grad - Σ_j grad_j·probs_j) per row, the row dot in
// float64.
func SoftmaxBackwardLastDim(probs, grad *tensor.Tensor) *tensor.Tensor {
	if !probs.SameShape(grad) {
		panic(fmt.Sprintf("nn: SoftmaxBackwardLastDim shape mismatch %v vs %v", probs.Shape(), grad.Shape()))
	}
	shape := probs.Shape()
	d := shape[len(shape)-1]
	out := tensor.New(shape...)
	pd, gd, od := probs.Data(), grad.Data(), out.Data()
	for r := 0; r < len(pd); r += d {
		prow, grow, orow := pd[r:r+d], gd[r:r+d], od[r:r+d]
		var dot float64
		for j, p := range prow {
			dot += float64(grow[j]) * float64(p)
		}
		for j, p := range prow {
			orow[j] = float32(float64(p) * (float64(grow[j]) - dot))
		}
	}
	return out
}

// --- GELU --------------------------------------------------------------------

// GELU is the tanh-approximated Gaussian error linear unit:
// 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))).
type GELU struct {
	lastX []float32 // cached pre-activation, train forwards only
}

// NewGELU returns a GELU activation.
func NewGELU() *GELU { return &GELU{} }

const (
	geluC = 0.7978845608028654 // √(2/π)
	geluA = 0.044715
)

// Forward applies the activation elementwise.
func (g *GELU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		fv := float64(v)
		t := math.Tanh(geluC * (fv + geluA*fv*fv*fv))
		od[i] = float32(0.5 * fv * (1 + t))
	}
	if train {
		g.lastX = append(g.lastX[:0], xd...)
	} else {
		g.lastX = nil
	}
	return out
}

// Backward multiplies by the activation derivative at the cached input.
func (g *GELU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.lastX == nil {
		panic("nn: GELU.Backward called before Forward(train=true)")
	}
	gd := grad.Data()
	if len(g.lastX) != len(gd) {
		panic(fmt.Sprintf("nn: GELU.Backward grad has %d elements but cache has %d (stale forward?)", len(gd), len(g.lastX)))
	}
	out := tensor.New(grad.Shape()...)
	od := out.Data()
	for i, v := range g.lastX {
		fv := float64(v)
		u := geluC * (fv + geluA*fv*fv*fv)
		t := math.Tanh(u)
		du := geluC * (1 + 3*geluA*fv*fv)
		d := 0.5*(1+t) + 0.5*fv*(1-t*t)*du
		od[i] = float32(float64(gd[i]) * d)
	}
	return out
}

// Params returns nil; GELU has no trainable parameters.
func (g *GELU) Params() []*Param { return nil }

// --- LayerNorm ---------------------------------------------------------------

// LayerNorm normalizes over the last dimension (size Dim) with learned
// gain and bias. Row statistics accumulate in float64.
type LayerNorm struct {
	Dim  int
	Eps  float64
	Gain *Param // [Dim]
	Bias *Param // [Dim]

	xhat   []float32 // cached normalized rows
	invStd []float64 // cached per-row 1/√(var+eps)
}

// NewLayerNorm returns a LayerNorm with unit gain and zero bias.
func NewLayerNorm(dim int) *LayerNorm {
	gain := tensor.New(dim)
	gain.Fill(1)
	return &LayerNorm{
		Dim: dim, Eps: 1e-5,
		Gain: NewParam("layernorm.gain", gain),
		Bias: NewParam("layernorm.bias", tensor.New(dim)),
	}
}

// Forward normalizes each row of the trailing dimension.
func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if shape[len(shape)-1] != l.Dim {
		panic(fmt.Sprintf("nn: LayerNorm expects trailing dim %d, got %v", l.Dim, shape))
	}
	d := l.Dim
	rows := x.Numel() / d
	out := tensor.New(shape...)
	xd, od := x.Data(), out.Data()
	gd, bd := l.Gain.Value.Data(), l.Bias.Value.Data()
	var xhat []float32
	var invStd []float64
	if train {
		xhat = make([]float32, len(xd))
		invStd = make([]float64, rows)
	}
	for r := 0; r < rows; r++ {
		row := xd[r*d : (r+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var variance float64
		for _, v := range row {
			dv := float64(v) - mean
			variance += dv * dv
		}
		variance /= float64(d)
		s := 1 / math.Sqrt(variance+l.Eps)
		orow := od[r*d : (r+1)*d]
		for j, v := range row {
			xh := (float64(v) - mean) * s
			orow[j] = float32(xh*float64(gd[j]) + float64(bd[j]))
			if train {
				xhat[r*d+j] = float32(xh)
			}
		}
		if train {
			invStd[r] = s
		}
	}
	// Eval forwards invalidate the cache (see the package guard note).
	l.xhat, l.invStd = xhat, invStd
	return out
}

// Backward propagates through the normalization and accumulates dGain,
// dBias.
func (l *LayerNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.xhat == nil {
		panic("nn: LayerNorm.Backward called before Forward(train=true)")
	}
	gd := grad.Data()
	if len(l.xhat) != len(gd) {
		panic(fmt.Sprintf("nn: LayerNorm.Backward grad has %d elements but cache has %d (stale forward?)", len(gd), len(l.xhat)))
	}
	d := l.Dim
	rows := len(gd) / d
	out := tensor.New(grad.Shape()...)
	od := out.Data()
	gaind := l.Gain.Value.Data()
	dGain, dBias := l.Gain.Grad.Data(), l.Bias.Grad.Data()
	for r := 0; r < rows; r++ {
		grow := gd[r*d : (r+1)*d]
		xrow := l.xhat[r*d : (r+1)*d]
		var meanDxhat, meanDxhatXhat float64
		for j, g := range grow {
			dxh := float64(g) * float64(gaind[j])
			meanDxhat += dxh
			meanDxhatXhat += dxh * float64(xrow[j])
			dGain[j] += float32(float64(g) * float64(xrow[j]))
			dBias[j] += g
		}
		meanDxhat /= float64(d)
		meanDxhatXhat /= float64(d)
		s := l.invStd[r]
		orow := od[r*d : (r+1)*d]
		for j, g := range grow {
			dxh := float64(g) * float64(gaind[j])
			orow[j] = float32(s * (dxh - meanDxhat - float64(xrow[j])*meanDxhatXhat))
		}
	}
	return out
}

// Params returns gain and bias.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gain, l.Bias} }

// --- Embedding ---------------------------------------------------------------

// Embedding maps [N, L] float32 token ids to [N, L, Dim] hidden states as
// the sum of a token-table row and a learned position row. Token ids are
// not differentiable; Backward scatter-adds into the tables and returns a
// zero gradient for the ids.
type Embedding struct {
	Vocab, SeqLen, Dim int
	Token              *Param // [Vocab, Dim]
	Pos                *Param // [SeqLen, Dim]

	lastIDs []int // cached ids, train forwards only
}

// NewEmbedding returns an Embedding with small uniform init.
func NewEmbedding(rng *rand.Rand, vocab, seqLen, dim int) *Embedding {
	return &Embedding{
		Vocab: vocab, SeqLen: seqLen, Dim: dim,
		Token: NewParam("embed.token", tensor.Rand(rng, -0.1, 0.1, vocab, dim)),
		Pos:   NewParam("embed.pos", tensor.Rand(rng, -0.1, 0.1, seqLen, dim)),
	}
}

// Forward looks up token plus position rows.
func (e *Embedding) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 2 || shape[1] != e.SeqLen {
		panic(fmt.Sprintf("nn: Embedding expects [N,%d] token ids, got %v", e.SeqLen, shape))
	}
	n, l, d := shape[0], shape[1], e.Dim
	out := tensor.New(n, l, d)
	xd, od := x.Data(), out.Data()
	tok, pos := e.Token.Value.Data(), e.Pos.Value.Data()
	var ids []int
	if train {
		ids = make([]int, len(xd))
	}
	for t, v := range xd {
		id := int(v)
		if id < 0 || id >= e.Vocab || float32(id) != v {
			panic(fmt.Sprintf("nn: Embedding token id %v out of range [0,%d)", v, e.Vocab))
		}
		trow := tok[id*d : (id+1)*d]
		prow := pos[(t%l)*d : (t%l+1)*d]
		orow := od[t*d : (t+1)*d]
		for j := range orow {
			orow[j] = trow[j] + prow[j]
		}
		if train {
			ids[t] = id
		}
	}
	e.lastIDs = ids
	return out
}

// Backward scatter-adds the gradient into the token and position tables.
func (e *Embedding) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if e.lastIDs == nil {
		panic("nn: Embedding.Backward called before Forward(train=true)")
	}
	gd := grad.Data()
	d := e.Dim
	if len(gd) != len(e.lastIDs)*d {
		panic(fmt.Sprintf("nn: Embedding.Backward grad has %d elements but cache expects %d (stale forward?)", len(gd), len(e.lastIDs)*d))
	}
	dTok, dPos := e.Token.Grad.Data(), e.Pos.Grad.Data()
	for t, id := range e.lastIDs {
		grow := gd[t*d : (t+1)*d]
		trow := dTok[id*d : (id+1)*d]
		prow := dPos[(t%e.SeqLen)*d : (t%e.SeqLen+1)*d]
		for j, g := range grow {
			trow[j] += g
			prow[j] += g
		}
	}
	return tensor.New(len(e.lastIDs)/e.SeqLen, e.SeqLen)
}

// Params returns the token and position tables.
func (e *Embedding) Params() []*Param { return []*Param{e.Token, e.Pos} }

// --- feed-forward ------------------------------------------------------------

// FeedForward is the transformer MLP: per-token Linear(Dim→Hidden), GELU,
// Linear(Hidden→Dim), operating on [N, L, Dim] by viewing rows as
// [N·L, Dim].
type FeedForward struct {
	Dim, Hidden int
	W1, W2      *Linear
	Act         *GELU
}

// NewFeedForward builds the MLP with Xavier-initialized projections.
func NewFeedForward(rng *rand.Rand, dim, hidden int) *FeedForward {
	return &FeedForward{
		Dim: dim, Hidden: hidden,
		W1:  NewLinear(rng, dim, hidden, true),
		W2:  NewLinear(rng, hidden, dim, true),
		Act: NewGELU(),
	}
}

// SetBackend routes both projections through be.
func (f *FeedForward) SetBackend(be tensor.Backend) {
	f.W1.SetBackend(be)
	f.W2.SetBackend(be)
}

// Forward applies the MLP per token.
func (f *FeedForward) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 3 || shape[2] != f.Dim {
		panic(fmt.Sprintf("nn: FeedForward expects [N,L,%d], got %v", f.Dim, shape))
	}
	h := f.W1.Forward(x.Reshape(shape[0]*shape[1], f.Dim), train)
	h = f.Act.Forward(h, train)
	out := f.W2.Forward(h, train)
	return out.Reshape(shape[0], shape[1], f.Dim)
}

// Backward propagates through both projections.
func (f *FeedForward) Backward(grad *tensor.Tensor) *tensor.Tensor {
	shape := grad.Shape()
	g := f.W2.Backward(grad.Reshape(shape[0]*shape[1], f.Dim))
	g = f.Act.Backward(g)
	g = f.W1.Backward(g)
	return g.Reshape(shape[0], shape[1], f.Dim)
}

// Params returns both projections' parameters.
func (f *FeedForward) Params() []*Param {
	return append(f.W1.Params(), f.W2.Params()...)
}

// --- multi-head self-attention -----------------------------------------------

// MultiHeadAttention is bidirectional (unmasked) multi-head self-attention
// over [N, L, Dim] hidden states. Per-(sample, head) score and context
// products run on the backend's batched GEMM entry points — the skinny
// m ≈ L shapes the batched dispatch heuristic exists for — and the
// softmax is the shared max-subtracted implementation.
type MultiHeadAttention struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *Linear

	be tensor.Backend // nil: process default

	// Training caches: per-head projections, attention probabilities, and
	// the batch geometry, invalidated by eval forwards.
	qh, kh, vh *tensor.Tensor // [N·Heads, L, Dim/Heads]
	probs      *tensor.Tensor // [N·Heads, L, L]
	lastN      int
	lastL      int
}

// NewMultiHeadAttention builds self-attention with heads | dim.
func NewMultiHeadAttention(rng *rand.Rand, dim, heads int) *MultiHeadAttention {
	if heads <= 0 || dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention heads %d must divide dim %d", heads, dim))
	}
	return &MultiHeadAttention{
		Dim: dim, Heads: heads,
		Wq: NewLinear(rng, dim, dim, true),
		Wk: NewLinear(rng, dim, dim, true),
		Wv: NewLinear(rng, dim, dim, true),
		Wo: NewLinear(rng, dim, dim, true),
	}
}

// SetBackend routes the projections and batched GEMMs through be.
func (a *MultiHeadAttention) SetBackend(be tensor.Backend) {
	a.be = be
	a.Wq.SetBackend(be)
	a.Wk.SetBackend(be)
	a.Wv.SetBackend(be)
	a.Wo.SetBackend(be)
}

// splitHeads permutes [N·L, Dim] rows into [N·H, L, Dim/H] instances.
func splitHeads(x *tensor.Tensor, n, l, heads int) *tensor.Tensor {
	d := x.Shape()[1]
	dh := d / heads
	out := tensor.New(n*heads, l, dh)
	xd, od := x.Data(), out.Data()
	for s := 0; s < n; s++ {
		for t := 0; t < l; t++ {
			src := xd[(s*l+t)*d : (s*l+t+1)*d]
			for h := 0; h < heads; h++ {
				copy(od[((s*heads+h)*l+t)*dh:((s*heads+h)*l+t+1)*dh], src[h*dh:(h+1)*dh])
			}
		}
	}
	return out
}

// mergeHeads is the inverse permutation, back to [N·L, Dim] rows.
func mergeHeads(x *tensor.Tensor, n, l, heads int) *tensor.Tensor {
	dh := x.Shape()[2]
	d := heads * dh
	out := tensor.New(n*l, d)
	xd, od := x.Data(), out.Data()
	for s := 0; s < n; s++ {
		for t := 0; t < l; t++ {
			dst := od[(s*l+t)*d : (s*l+t+1)*d]
			for h := 0; h < heads; h++ {
				copy(dst[h*dh:(h+1)*dh], xd[((s*heads+h)*l+t)*dh:((s*heads+h)*l+t+1)*dh])
			}
		}
	}
	return out
}

// Forward computes softmax(Q·Kᵀ/√dₕ)·V per head, then the output
// projection.
func (a *MultiHeadAttention) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 3 || shape[2] != a.Dim {
		panic(fmt.Sprintf("nn: MultiHeadAttention expects [N,L,%d], got %v", a.Dim, shape))
	}
	n, l := shape[0], shape[1]
	be := backendOr(a.be)
	x2 := x.Reshape(n*l, a.Dim)
	qh := splitHeads(a.Wq.Forward(x2, train), n, l, a.Heads)
	kh := splitHeads(a.Wk.Forward(x2, train), n, l, a.Heads)
	vh := splitHeads(a.Wv.Forward(x2, train), n, l, a.Heads)

	scores := tensor.MatMulTBBatchWith(be, qh, kh) // [N·H, L, L]
	be.Scale(scores, scores, float32(1/math.Sqrt(float64(a.Dim/a.Heads))))
	probs := SoftmaxLastDim(scores)
	ctx := tensor.MatMulBatchWith(be, probs, vh) // [N·H, L, dh]
	out := a.Wo.Forward(mergeHeads(ctx, n, l, a.Heads), train)

	if train {
		a.qh, a.kh, a.vh, a.probs = qh, kh, vh, probs
		a.lastN, a.lastL = n, l
	} else {
		a.qh, a.kh, a.vh, a.probs = nil, nil, nil, nil
	}
	return out.Reshape(n, l, a.Dim)
}

// Backward propagates through the attention product, softmax, scaling,
// and all four projections.
func (a *MultiHeadAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.probs == nil {
		panic("nn: MultiHeadAttention.Backward called before Forward(train=true)")
	}
	n, l := a.lastN, a.lastL
	gd := grad.Data()
	if len(gd) != n*l*a.Dim {
		panic(fmt.Sprintf("nn: MultiHeadAttention.Backward grad has %d elements but cache expects %d (stale forward?)", len(gd), n*l*a.Dim))
	}
	be := backendOr(a.be)
	dCtx2 := a.Wo.Backward(grad.Reshape(n*l, a.Dim))
	dCtx := splitHeads(dCtx2, n, l, a.Heads) // [N·H, L, dh]

	dProbs := tensor.MatMulTBBatchWith(be, dCtx, a.vh) // [N·H, L, L]
	dV := tensor.MatMulTABatchWith(be, a.probs, dCtx)  // probsᵀ·dCtx
	dScores := SoftmaxBackwardLastDim(a.probs, dProbs)
	be.Scale(dScores, dScores, float32(1/math.Sqrt(float64(a.Dim/a.Heads))))
	dQ := tensor.MatMulBatchWith(be, dScores, a.kh) // [N·H, L, dh]
	dK := tensor.MatMulTABatchWith(be, dScores, a.qh)

	dx := a.Wq.Backward(mergeHeads(dQ, n, l, a.Heads))
	be.Add(dx, dx, a.Wk.Backward(mergeHeads(dK, n, l, a.Heads)))
	be.Add(dx, dx, a.Wv.Backward(mergeHeads(dV, n, l, a.Heads)))
	return dx.Reshape(n, l, a.Dim)
}

// Params returns all four projections' parameters.
func (a *MultiHeadAttention) Params() []*Param {
	ps := append(a.Wq.Params(), a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	return append(ps, a.Wo.Params()...)
}

// --- sequence pooling --------------------------------------------------------

// MeanPoolSeq averages [N, L, D] hidden states over the sequence
// dimension, producing [N, D] features for a classifier head.
type MeanPoolSeq struct {
	lastL int // cached sequence length, train forwards only
}

// NewMeanPoolSeq returns a sequence mean pool.
func NewMeanPoolSeq() *MeanPoolSeq { return &MeanPoolSeq{} }

// Forward averages over dimension 1.
func (p *MeanPoolSeq) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 3 {
		panic(fmt.Sprintf("nn: MeanPoolSeq expects [N,L,D], got %v", shape))
	}
	n, l, d := shape[0], shape[1], shape[2]
	out := tensor.New(n, d)
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(l)
	for s := 0; s < n; s++ {
		orow := od[s*d : (s+1)*d]
		for t := 0; t < l; t++ {
			row := xd[(s*l+t)*d : (s*l+t+1)*d]
			for j, v := range row {
				orow[j] += v
			}
		}
		for j := range orow {
			orow[j] *= inv
		}
	}
	if train {
		p.lastL = l
	} else {
		p.lastL = 0
	}
	return out
}

// Backward broadcasts the gradient back over the sequence positions.
func (p *MeanPoolSeq) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastL == 0 {
		panic("nn: MeanPoolSeq.Backward called before Forward(train=true)")
	}
	shape := grad.Shape()
	if len(shape) != 2 {
		panic(fmt.Sprintf("nn: MeanPoolSeq.Backward expects [N,D] grad, got %v", shape))
	}
	n, d, l := shape[0], shape[1], p.lastL
	out := tensor.New(n, l, d)
	gd, od := grad.Data(), out.Data()
	inv := 1 / float32(l)
	for s := 0; s < n; s++ {
		grow := gd[s*d : (s+1)*d]
		for t := 0; t < l; t++ {
			orow := od[(s*l+t)*d : (s*l+t+1)*d]
			for j, g := range grow {
				orow[j] = g * inv
			}
		}
	}
	return out
}

// Params returns nil; pooling has no trainable parameters.
func (p *MeanPoolSeq) Params() []*Param { return nil }

var (
	_ Layer       = (*GELU)(nil)
	_ Layer       = (*LayerNorm)(nil)
	_ Layer       = (*Embedding)(nil)
	_ Layer       = (*FeedForward)(nil)
	_ Layer       = (*MultiHeadAttention)(nil)
	_ Layer       = (*MeanPoolSeq)(nil)
	_ BackendUser = (*FeedForward)(nil)
	_ BackendUser = (*MultiHeadAttention)(nil)
)
