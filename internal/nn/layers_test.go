package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipebd/internal/tensor"
)

func TestConv2dOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		inC, outC, k, s, p int
		n, h, w            int
		wantH, wantW       int
	}{
		{3, 16, 3, 1, 1, 2, 32, 32, 32, 32},
		{3, 16, 3, 2, 1, 2, 32, 32, 16, 16},
		{8, 4, 1, 1, 0, 1, 7, 7, 7, 7},
		{3, 64, 7, 2, 3, 1, 224, 224, 112, 112},
	}
	for _, c := range cases {
		l := NewConv2d(rng, c.inC, c.outC, c.k, c.s, c.p, true)
		out := l.Forward(tensor.New(c.n, c.inC, c.h, c.w), false)
		want := []int{c.n, c.outC, c.wantH, c.wantW}
		for i, d := range want {
			if out.Shape()[i] != d {
				t.Fatalf("conv shape = %v, want %v", out.Shape(), want)
			}
		}
	}
}

func TestConv2dLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2d(rng, 2, 3, 3, 1, 1, false) // no bias: strictly linear
	f := func(scale float32) bool {
		if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) {
			return true
		}
		scale = float32(math.Mod(float64(scale), 8))
		x := tensor.Rand(rng, -1, 1, 1, 2, 5, 5)
		y1 := tensor.Scale(l.Forward(x, false), scale)
		y2 := l.Forward(tensor.Scale(x, scale), false)
		return y1.AllClose(y2, 1e-3, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDWConvPreservesChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewDWConv2d(rng, 5, 3, 1, 1, false)
	out := l.Forward(tensor.New(2, 5, 8, 8), false)
	if out.Shape()[1] != 5 {
		t.Fatalf("DWConv channels = %d, want 5", out.Shape()[1])
	}
}

func TestDWConvChannelIndependenceProperty(t *testing.T) {
	// Depthwise conv must not mix channels: zeroing channel 1's input
	// must leave channel 0's output unchanged.
	rng := rand.New(rand.NewSource(4))
	l := NewDWConv2d(rng, 2, 3, 1, 1, false)
	x := tensor.Rand(rng, -1, 1, 1, 2, 6, 6)
	full := l.Forward(x, false)
	x2 := x.Clone()
	for i := 36; i < 72; i++ { // zero channel 1
		x2.Data()[i] = 0
	}
	part := l.Forward(x2, false)
	for i := 0; i < 36; i++ { // channel 0 plane of output
		if full.Data()[i] != part.Data()[i] {
			t.Fatal("depthwise conv mixed channels")
		}
	}
}

func TestBatchNormNormalizesTrainBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewBatchNorm2d(2)
	x := tensor.Rand(rng, 3, 9, 8, 2, 4, 4) // mean ~6, far from 0
	y := l.Forward(x, true)
	// With gamma=1, beta=0 each channel of y should be ~N(0,1).
	n, spatial := 8, 16
	for ci := 0; ci < 2; ci++ {
		var sum, sq float64
		for ni := 0; ni < n; ni++ {
			base := (ni*2 + ci) * spatial
			for i := 0; i < spatial; i++ {
				v := float64(y.Data()[base+i])
				sum += v
				sq += v * v
			}
		}
		count := float64(n * spatial)
		mean := sum / count
		variance := sq/count - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d not normalized: mean %v var %v", ci, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	l := NewBatchNorm2d(1)
	// With default running stats (mean 0, var 1), eval is near-identity.
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := l.Forward(x, false)
	if !y.AllClose(x, 1e-3, 1e-3) {
		t.Fatalf("eval BN with unit stats should be ~identity, got %v", y)
	}
}

func TestReLU6Clamps(t *testing.T) {
	l := NewReLU6()
	x := tensor.FromSlice([]float32{-3, 0, 2, 6, 9}, 5)
	y := l.Forward(x, false)
	want := tensor.FromSlice([]float32{0, 0, 2, 6, 6}, 5)
	if !y.Equal(want) {
		t.Fatalf("ReLU6 = %v, want %v", y, want)
	}
}

func TestReLUNonNegativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewReLU()
	for trial := 0; trial < 20; trial++ {
		x := tensor.Rand(rng, -10, 10, 4, 4)
		y := l.Forward(x, false)
		for _, v := range y.Data() {
			if v < 0 {
				t.Fatal("ReLU output must be non-negative")
			}
		}
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := NewMaxPool2d(2).Forward(x, false)
	want := tensor.FromSlice([]float32{4, 8, 12, 16}, 1, 1, 2, 2)
	if !y.Equal(want) {
		t.Fatalf("MaxPool = %v, want %v", y, want)
	}
}

func TestGlobalAvgPoolKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := NewGlobalAvgPool2d().Forward(x, false)
	want := tensor.FromSlice([]float32{2.5, 25}, 1, 2, 1, 1)
	if !y.Equal(want) {
		t.Fatalf("GlobalAvgPool = %v, want %v", y, want)
	}
}

func TestResidualIdentityWithZeroBody(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	body := NewConv2d(rng, 2, 2, 3, 1, 1, false)
	body.Weight.Value.Zero()
	r := NewResidual(body)
	x := tensor.Rand(rng, -1, 1, 1, 2, 4, 4)
	if !r.Forward(x, false).Equal(x) {
		t.Fatal("residual with zero body must be identity")
	}
}

func TestSequentialParamsCollected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := NewSequential(
		NewConv2d(rng, 1, 2, 3, 1, 1, true), // 2 params
		NewBatchNorm2d(2),                   // 2 params
		NewReLU(),                           // 0
		NewFlatten(),                        // 0
	)
	if got := len(s.Params()); got != 4 {
		t.Fatalf("Sequential.Params count = %d, want 4", got)
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layers := map[string]Layer{
		"Conv2d":    NewConv2d(rng, 1, 1, 3, 1, 1, false),
		"DWConv2d":  NewDWConv2d(rng, 1, 3, 1, 1, false),
		"Linear":    NewLinear(rng, 2, 2, false),
		"BatchNorm": NewBatchNorm2d(1),
		"ReLU":      NewReLU(),
		"MaxPool":   NewMaxPool2d(2),
		"GAP":       NewGlobalAvgPool2d(),
		"Flatten":   NewFlatten(),
	}
	for name, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.Backward before Forward did not panic", name)
				}
			}()
			l.Backward(tensor.New(1, 1, 2, 2))
		}()
	}
}
