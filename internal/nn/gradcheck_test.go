package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipebd/internal/tensor"
)

// lossOf computes a fixed linear functional of the layer output:
// L = Σ w_i · out_i. Its gradient with respect to the output is exactly w,
// giving full coverage of every output element during gradient checks.
func lossOf(l Layer, x, w *tensor.Tensor, train bool) float64 {
	out := l.Forward(x, train)
	var s float64
	od, wd := out.Data(), w.Data()
	for i := range od {
		s += float64(od[i]) * float64(wd[i])
	}
	return s
}

// checkGradients verifies analytic input and parameter gradients of layer l
// against central finite differences at input x.
func checkGradients(t *testing.T, name string, l Layer, x *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x.Clone(), true)
	w := tensor.Rand(rng, -1, 1, out.Shape()...)

	ZeroGrads(l.Params())
	dx := l.Backward(w)

	const eps = 1e-2
	const tol = 2e-2 // float32 arithmetic; relative + absolute mix below

	compare := func(kind string, analytic float64, probe func(delta float32) float64) {
		t.Helper()
		plus := probe(eps)
		minus := probe(-eps)
		numeric := (plus - minus) / (2 * eps)
		diff := math.Abs(analytic - numeric)
		scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
		if diff/scale > tol {
			t.Errorf("%s: %s gradient mismatch: analytic %v numeric %v", name, kind, analytic, numeric)
		}
	}

	// Input gradient: probe a spread of elements to bound test time.
	n := x.Numel()
	stride := n/7 + 1
	for i := 0; i < n; i += stride {
		i := i
		compare("input", float64(dx.Data()[i]), func(delta float32) float64 {
			xp := x.Clone()
			xp.Data()[i] += delta
			return lossOf(l, xp, w, true)
		})
	}

	// Parameter gradients.
	for _, p := range l.Params() {
		np := p.Value.Numel()
		pstride := np/7 + 1
		for i := 0; i < np; i += pstride {
			i, p := i, p
			compare("param "+p.Name, float64(p.Grad.Data()[i]), func(delta float32) float64 {
				old := p.Value.Data()[i]
				p.Value.Data()[i] = old + delta
				loss := lossOf(l, x.Clone(), w, true)
				p.Value.Data()[i] = old
				return loss
			})
		}
	}
}

func TestConv2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2d(rng, 3, 4, 3, 1, 1, true)
	checkGradients(t, "Conv2d/s1", l, tensor.Rand(rng, -1, 1, 2, 3, 5, 5))

	l2 := NewConv2d(rng, 2, 3, 3, 2, 1, false)
	checkGradients(t, "Conv2d/s2-nobias", l2, tensor.Rand(rng, -1, 1, 2, 2, 6, 6))

	l3 := NewConv2d(rng, 4, 2, 1, 1, 0, true)
	checkGradients(t, "Conv2d/1x1", l3, tensor.Rand(rng, -1, 1, 1, 4, 4, 4))
}

func TestDWConv2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDWConv2d(rng, 3, 3, 1, 1, true)
	checkGradients(t, "DWConv2d/s1", l, tensor.Rand(rng, -1, 1, 2, 3, 5, 5))

	l2 := NewDWConv2d(rng, 2, 3, 2, 1, false)
	checkGradients(t, "DWConv2d/s2", l2, tensor.Rand(rng, -1, 1, 1, 2, 6, 6))
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(rng, 6, 4, true)
	checkGradients(t, "Linear", l, tensor.Rand(rng, -1, 1, 3, 6))
}

func TestBatchNorm2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewBatchNorm2d(3)
	// Non-trivial gamma/beta so their gradients are exercised.
	l.Gamma.Value.CopyFrom(tensor.Rand(rng, 0.5, 1.5, 3))
	l.Beta.Value.CopyFrom(tensor.Rand(rng, -0.5, 0.5, 3))
	checkGradients(t, "BatchNorm2d", l, tensor.Rand(rng, -2, 2, 4, 3, 3, 3))
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Keep values away from the kinks at 0 and 6 so finite differences
	// are well-defined.
	x := tensor.Rand(rng, 0.5, 5.5, 2, 3, 4, 4)
	for i, v := range x.Data() {
		if i%2 == 0 {
			x.Data()[i] = -v // clearly negative
		}
	}
	checkGradients(t, "ReLU", NewReLU(), x)
	checkGradients(t, "ReLU6", NewReLU6(), x)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Distinct values avoid argmax ties that break finite differences.
	x := tensor.New(1, 2, 4, 4)
	perm := rng.Perm(x.Numel())
	for i, p := range perm {
		x.Data()[i] = float32(p)
	}
	checkGradients(t, "MaxPool2d", NewMaxPool2d(2), x)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkGradients(t, "GlobalAvgPool2d", NewGlobalAvgPool2d(), tensor.Rand(rng, -1, 1, 2, 3, 4, 4))
}

func TestFlattenGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checkGradients(t, "Flatten", NewFlatten(), tensor.Rand(rng, -1, 1, 2, 3, 2, 2))
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	body := NewSequential(
		NewConv2d(rng, 3, 3, 3, 1, 1, false),
		NewReLU(),
		NewConv2d(rng, 3, 3, 3, 1, 1, false),
	)
	checkGradients(t, "Residual", NewResidual(body), tensor.Rand(rng, -1, 1, 2, 3, 4, 4))
}

func TestGELUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checkGradients(t, "GELU", NewGELU(), tensor.Rand(rng, -2, 2, 2, 3, 4))
	// Non-square and degenerate shapes.
	checkGradients(t, "GELU/1elem", NewGELU(), tensor.Rand(rng, -2, 2, 1, 1))
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewLayerNorm(6)
	l.Gain.Value.CopyFrom(tensor.Rand(rng, 0.5, 1.5, 6))
	l.Bias.Value.CopyFrom(tensor.Rand(rng, -0.5, 0.5, 6))
	checkGradients(t, "LayerNorm", l, tensor.Rand(rng, -2, 2, 2, 3, 6))

	// Seq-len-1 rows: statistics over a single token per sample.
	l1 := NewLayerNorm(5)
	l1.Gain.Value.CopyFrom(tensor.Rand(rng, 0.5, 1.5, 5))
	checkGradients(t, "LayerNorm/L1", l1, tensor.Rand(rng, -2, 2, 2, 1, 5))
}

func TestMultiHeadAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Non-square: L=5 ≠ D=8, two heads.
	l := NewMultiHeadAttention(rng, 8, 2)
	checkGradients(t, "MHA/L5D8H2", l, tensor.Rand(rng, -1, 1, 2, 5, 8))

	// Seq-len-1: softmax over a single position (probability exactly 1).
	l1 := NewMultiHeadAttention(rng, 6, 3)
	checkGradients(t, "MHA/L1", l1, tensor.Rand(rng, -1, 1, 2, 1, 6))

	// Single head.
	lh := NewMultiHeadAttention(rng, 4, 1)
	checkGradients(t, "MHA/H1", lh, tensor.Rand(rng, -1, 1, 1, 3, 4))
}

func TestFeedForwardGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	checkGradients(t, "FeedForward", NewFeedForward(rng, 6, 10), tensor.Rand(rng, -1, 1, 2, 3, 6))
	checkGradients(t, "FeedForward/L1", NewFeedForward(rng, 4, 4), tensor.Rand(rng, -1, 1, 2, 1, 4))
}

func TestMeanPoolSeqGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	checkGradients(t, "MeanPoolSeq", NewMeanPoolSeq(), tensor.Rand(rng, -1, 1, 2, 4, 3))
	checkGradients(t, "MeanPoolSeq/L1", NewMeanPoolSeq(), tensor.Rand(rng, -1, 1, 2, 1, 3))
}

// TestEmbeddingGradients checks the scatter-add parameter gradients by
// finite differences; the input (integer token ids) is not
// differentiable, so only the tables are probed.
func TestEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const vocab, seqLen, dim = 7, 3, 4
	e := NewEmbedding(rng, vocab, seqLen, dim)
	ids := tensor.New(2, seqLen)
	for i := range ids.Data() {
		ids.Data()[i] = float32(rng.Intn(vocab))
	}
	w := tensor.Rand(rng, -1, 1, 2, seqLen, dim)
	ZeroGrads(e.Params())
	e.Forward(ids, true)
	e.Backward(w)

	const eps = 1e-2
	const tol = 2e-2
	for _, p := range e.Params() {
		for i := 0; i < p.Value.Numel(); i++ {
			probe := func(delta float32) float64 {
				old := p.Value.Data()[i]
				p.Value.Data()[i] = old + delta
				loss := lossOf(e, ids, w, true)
				p.Value.Data()[i] = old
				return loss
			}
			numeric := (probe(eps) - probe(-eps)) / (2 * eps)
			analytic := float64(p.Grad.Data()[i])
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if diff/scale > tol {
				t.Errorf("Embedding %s[%d]: analytic %v numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// TestSoftmaxBackwardGradients drives the max-subtracted softmax backward
// against finite differences of Σ w ⊙ softmax(x), including a width-1
// row (gradient exactly zero: the output is constant 1).
func TestSoftmaxBackwardGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, shape := range [][]int{{3, 5}, {2, 3, 4}, {2, 1}} {
		x := tensor.Rand(rng, -2, 2, shape...)
		w := tensor.Rand(rng, -1, 1, shape...)
		probs := SoftmaxLastDim(x)
		dx := SoftmaxBackwardLastDim(probs, w)
		const eps = 1e-2
		const tol = 2e-2
		for i := 0; i < x.Numel(); i++ {
			probe := func(delta float32) float64 {
				xp := x.Clone()
				xp.Data()[i] += delta
				out := SoftmaxLastDim(xp)
				var s float64
				for j, v := range out.Data() {
					s += float64(v) * float64(w.Data()[j])
				}
				return s
			}
			numeric := (probe(eps) - probe(-eps)) / (2 * eps)
			analytic := float64(dx.Data()[i])
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if diff/scale > tol {
				t.Errorf("SoftmaxBackward %v[%d]: analytic %v numeric %v", shape, i, analytic, numeric)
			}
		}
	}
}

// TestKLDivLossGradients checks the temperature-scaled distillation loss
// gradient with respect to the student logits by finite differences, at
// several temperatures and on a single-class edge shape (loss exactly 0).
func TestKLDivLossGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, temp := range []float64{1, 2, 4} {
		for _, shape := range [][]int{{3, 5}, {2, 1}} {
			student := tensor.Rand(rng, -2, 2, shape...)
			teacher := tensor.Rand(rng, -2, 2, shape...)
			_, grad := KLDivLoss(student, teacher, temp)
			const eps = 1e-2
			const tol = 2e-2
			for i := 0; i < student.Numel(); i++ {
				probe := func(delta float32) float64 {
					sp := student.Clone()
					sp.Data()[i] += delta
					loss, _ := KLDivLoss(sp, teacher, temp)
					return loss
				}
				numeric := (probe(eps) - probe(-eps)) / (2 * eps)
				analytic := float64(grad.Data()[i])
				diff := math.Abs(analytic - numeric)
				scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
				if diff/scale > tol {
					t.Errorf("KLDivLoss T=%v %v[%d]: analytic %v numeric %v", temp, shape, i, analytic, numeric)
				}
			}
		}
	}
}

// TestTransformerBlockGradients runs the full encoder-layer composition —
// attention and MLP residuals, both layer norms — through the gradient
// checker, the same structure the transformer workbench blocks use.
func TestTransformerBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const dim = 6
	block := NewSequential(
		NewResidual(NewMultiHeadAttention(rng, dim, 2)),
		NewLayerNorm(dim),
		NewResidual(NewFeedForward(rng, dim, 8)),
		NewLayerNorm(dim),
	)
	checkGradients(t, "TransformerBlock", block, tensor.Rand(rng, -1, 1, 2, 3, dim))
}

func TestSequentialCNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewSequential(
		NewConv2d(rng, 2, 4, 3, 1, 1, false),
		NewBatchNorm2d(4),
		NewReLU6(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, 4*3*3, 5, true),
	)
	// Avoid BN kinks by using a reasonably spread input.
	checkGradients(t, "SequentialCNN", net, tensor.Rand(rng, -2, 2, 3, 2, 6, 6))
}
