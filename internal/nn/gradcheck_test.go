package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipebd/internal/tensor"
)

// lossOf computes a fixed linear functional of the layer output:
// L = Σ w_i · out_i. Its gradient with respect to the output is exactly w,
// giving full coverage of every output element during gradient checks.
func lossOf(l Layer, x, w *tensor.Tensor, train bool) float64 {
	out := l.Forward(x, train)
	var s float64
	od, wd := out.Data(), w.Data()
	for i := range od {
		s += float64(od[i]) * float64(wd[i])
	}
	return s
}

// checkGradients verifies analytic input and parameter gradients of layer l
// against central finite differences at input x.
func checkGradients(t *testing.T, name string, l Layer, x *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x.Clone(), true)
	w := tensor.Rand(rng, -1, 1, out.Shape()...)

	ZeroGrads(l.Params())
	dx := l.Backward(w)

	const eps = 1e-2
	const tol = 2e-2 // float32 arithmetic; relative + absolute mix below

	compare := func(kind string, analytic float64, probe func(delta float32) float64) {
		t.Helper()
		plus := probe(eps)
		minus := probe(-eps)
		numeric := (plus - minus) / (2 * eps)
		diff := math.Abs(analytic - numeric)
		scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
		if diff/scale > tol {
			t.Errorf("%s: %s gradient mismatch: analytic %v numeric %v", name, kind, analytic, numeric)
		}
	}

	// Input gradient: probe a spread of elements to bound test time.
	n := x.Numel()
	stride := n/7 + 1
	for i := 0; i < n; i += stride {
		i := i
		compare("input", float64(dx.Data()[i]), func(delta float32) float64 {
			xp := x.Clone()
			xp.Data()[i] += delta
			return lossOf(l, xp, w, true)
		})
	}

	// Parameter gradients.
	for _, p := range l.Params() {
		np := p.Value.Numel()
		pstride := np/7 + 1
		for i := 0; i < np; i += pstride {
			i, p := i, p
			compare("param "+p.Name, float64(p.Grad.Data()[i]), func(delta float32) float64 {
				old := p.Value.Data()[i]
				p.Value.Data()[i] = old + delta
				loss := lossOf(l, x.Clone(), w, true)
				p.Value.Data()[i] = old
				return loss
			})
		}
	}
}

func TestConv2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2d(rng, 3, 4, 3, 1, 1, true)
	checkGradients(t, "Conv2d/s1", l, tensor.Rand(rng, -1, 1, 2, 3, 5, 5))

	l2 := NewConv2d(rng, 2, 3, 3, 2, 1, false)
	checkGradients(t, "Conv2d/s2-nobias", l2, tensor.Rand(rng, -1, 1, 2, 2, 6, 6))

	l3 := NewConv2d(rng, 4, 2, 1, 1, 0, true)
	checkGradients(t, "Conv2d/1x1", l3, tensor.Rand(rng, -1, 1, 1, 4, 4, 4))
}

func TestDWConv2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDWConv2d(rng, 3, 3, 1, 1, true)
	checkGradients(t, "DWConv2d/s1", l, tensor.Rand(rng, -1, 1, 2, 3, 5, 5))

	l2 := NewDWConv2d(rng, 2, 3, 2, 1, false)
	checkGradients(t, "DWConv2d/s2", l2, tensor.Rand(rng, -1, 1, 1, 2, 6, 6))
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(rng, 6, 4, true)
	checkGradients(t, "Linear", l, tensor.Rand(rng, -1, 1, 3, 6))
}

func TestBatchNorm2dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewBatchNorm2d(3)
	// Non-trivial gamma/beta so their gradients are exercised.
	l.Gamma.Value.CopyFrom(tensor.Rand(rng, 0.5, 1.5, 3))
	l.Beta.Value.CopyFrom(tensor.Rand(rng, -0.5, 0.5, 3))
	checkGradients(t, "BatchNorm2d", l, tensor.Rand(rng, -2, 2, 4, 3, 3, 3))
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Keep values away from the kinks at 0 and 6 so finite differences
	// are well-defined.
	x := tensor.Rand(rng, 0.5, 5.5, 2, 3, 4, 4)
	for i, v := range x.Data() {
		if i%2 == 0 {
			x.Data()[i] = -v // clearly negative
		}
	}
	checkGradients(t, "ReLU", NewReLU(), x)
	checkGradients(t, "ReLU6", NewReLU6(), x)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Distinct values avoid argmax ties that break finite differences.
	x := tensor.New(1, 2, 4, 4)
	perm := rng.Perm(x.Numel())
	for i, p := range perm {
		x.Data()[i] = float32(p)
	}
	checkGradients(t, "MaxPool2d", NewMaxPool2d(2), x)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkGradients(t, "GlobalAvgPool2d", NewGlobalAvgPool2d(), tensor.Rand(rng, -1, 1, 2, 3, 4, 4))
}

func TestFlattenGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checkGradients(t, "Flatten", NewFlatten(), tensor.Rand(rng, -1, 1, 2, 3, 2, 2))
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	body := NewSequential(
		NewConv2d(rng, 3, 3, 3, 1, 1, false),
		NewReLU(),
		NewConv2d(rng, 3, 3, 3, 1, 1, false),
	)
	checkGradients(t, "Residual", NewResidual(body), tensor.Rand(rng, -1, 1, 2, 3, 4, 4))
}

func TestSequentialCNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewSequential(
		NewConv2d(rng, 2, 4, 3, 1, 1, false),
		NewBatchNorm2d(4),
		NewReLU6(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, 4*3*3, 5, true),
	)
	// Avoid BN kinks by using a reasonably spread input.
	checkGradients(t, "SequentialCNN", net, tensor.Rand(rng, -2, 2, 3, 2, 6, 6))
}
