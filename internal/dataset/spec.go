// Package dataset provides (a) dataset shape descriptors consumed by the
// performance simulator's data-loading cost model, and (b) synthetic
// in-memory datasets used by the numeric training engine.
//
// The paper trains on CIFAR-10 and ImageNet. Neither dataset is available
// (or needed) here: the simulator only requires each dataset's loading
// profile (sample count, storage bytes, decode cost), and the numeric
// engine only requires a learnable task, which a synthetic teacher-labelled
// dataset provides.
package dataset

// Spec describes a dataset's loading profile and sample geometry. All
// quantities are per-sample averages; the simulator multiplies by batch
// size and divides by the host's shared loader bandwidth.
type Spec struct {
	Name     string
	NumTrain int

	// Sample geometry after decode/augmentation, NCHW without batch.
	Channels, Height, Width int

	// StorageBytes is the average on-disk size of one sample (JPEG for
	// ImageNet, raw for CIFAR). This is what the shared disk/page-cache
	// path must deliver.
	StorageBytes int64

	// DecodeCPUSeconds is the average single-core CPU time to decode and
	// augment one sample. ImageNet's JPEG decode dominates its loading
	// cost; CIFAR's is trivial.
	DecodeCPUSeconds float64
}

// DecodedBytes returns the in-memory size of one decoded float32 sample.
func (s Spec) DecodedBytes() int64 {
	return int64(s.Channels) * int64(s.Height) * int64(s.Width) * 4
}

// CIFAR10 returns the loading profile of CIFAR-10 (50 000 train samples of
// 3×32×32; stored raw, negligible decode cost).
func CIFAR10() Spec {
	return Spec{
		Name:             "cifar10",
		NumTrain:         50000,
		Channels:         3,
		Height:           32,
		Width:            32,
		StorageBytes:     3 * 32 * 32, // raw bytes, one per subpixel
		DecodeCPUSeconds: 2e-6,
	}
}

// ImageNet returns the loading profile of ImageNet-1k training data
// (1 281 167 samples decoded to 3×224×224; ~110 kB average JPEG with a
// non-trivial decode+augment CPU cost).
func ImageNet() Spec {
	return Spec{
		Name:             "imagenet",
		NumTrain:         1281167,
		Channels:         3,
		Height:           224,
		Width:            224,
		StorageBytes:     110 * 1024,
		DecodeCPUSeconds: 3.5e-3,
	}
}

// TokensSynthetic returns the loading profile of the synthetic token
// dataset the transformer workload trains on: numTrain sequences of
// seqLen ids, generated in memory (Channels=1, Height=seqLen, Width=1 —
// sequence geometry mapped onto the NCHW fields the same way the cost
// model maps it). Storage is two bytes per token (uint16 ids) and decode
// is negligible: token workloads are compute-, not loader-, bound.
func TokensSynthetic(numTrain, seqLen int) Spec {
	return Spec{
		Name:             "tokens-synthetic",
		NumTrain:         numTrain,
		Channels:         1,
		Height:           seqLen,
		Width:            1,
		StorageBytes:     2 * int64(seqLen),
		DecodeCPUSeconds: 1e-7,
	}
}

// StepsPerEpoch returns the number of optimizer steps per epoch at the
// given global batch size (floor division, matching drop-last loaders).
func (s Spec) StepsPerEpoch(globalBatch int) int {
	if globalBatch <= 0 {
		panic("dataset: non-positive batch size")
	}
	steps := s.NumTrain / globalBatch
	if steps == 0 {
		steps = 1
	}
	return steps
}
