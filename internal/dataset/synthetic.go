package dataset

import (
	"fmt"
	"math/rand"

	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

// Batch is one training mini-batch for the numeric engine.
type Batch struct {
	X      *tensor.Tensor // [B, C, H, W] images, or [B, L] token ids
	Labels []int
}

// Synthetic is an in-memory dataset for the numeric engine. Samples are
// laid out along dimension 0; the trailing dimensions are workload-shaped
// ([C, H, W] images for the conv families, [L] token ids for the
// transformer family).
type Synthetic struct {
	X       *tensor.Tensor // [N, ...sample dims]
	Labels  []int
	Classes int
}

// NewRandom generates n uniformly random samples with uniformly random
// labels. Useful for memorization and throughput tests.
func NewRandom(rng *rand.Rand, n, c, h, w, classes int) *Synthetic {
	s := &Synthetic{
		X:       tensor.Rand(rng, -1, 1, n, c, h, w),
		Labels:  make([]int, n),
		Classes: classes,
	}
	for i := range s.Labels {
		s.Labels[i] = rng.Intn(classes)
	}
	return s
}

// NewTeacherLabelled generates n random inputs labelled by the argmax of a
// labeller network's logits, producing a task that is learnable by
// construction — the synthetic stand-in for CIFAR/ImageNet in
// training-quality experiments (Table II accuracy column).
func NewTeacherLabelled(rng *rand.Rand, labeller nn.Layer, n, c, h, w, classes int) *Synthetic {
	s := &Synthetic{
		X:       tensor.Rand(rng, -1, 1, n, c, h, w),
		Labels:  make([]int, n),
		Classes: classes,
	}
	// Label in chunks to bound memory.
	const chunk = 64
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		xb := s.slice(start, end)
		logits := labeller.Forward(xb, false)
		if logits.NDim() != 2 || logits.Dim(1) != classes {
			panic(fmt.Sprintf("dataset: labeller produced shape %v, want [*,%d]", logits.Shape(), classes))
		}
		pred := tensor.ArgMaxRow(logits)
		copy(s.Labels[start:end], pred)
	}
	return s
}

// Len returns the number of samples.
func (s *Synthetic) Len() int { return len(s.Labels) }

// slice copies samples [start,end) into a fresh tensor, preserving the
// per-sample trailing dimensions.
func (s *Synthetic) slice(start, end int) *tensor.Tensor {
	shape := s.X.Shape()
	per := 1
	outShape := make([]int, len(shape))
	outShape[0] = end - start
	for i, d := range shape[1:] {
		per *= d
		outShape[i+1] = d
	}
	out := tensor.New(outShape...)
	copy(out.Data(), s.X.Data()[start*per:end*per])
	return out
}

// Batches splits the dataset into fixed-size batches in deterministic
// order, dropping the final partial batch (drop-last semantics, matching
// StepsPerEpoch). Deterministic order is essential for the bit-equivalence
// experiments.
func (s *Synthetic) Batches(batchSize int) []Batch {
	if batchSize <= 0 {
		panic("dataset: non-positive batch size")
	}
	var out []Batch
	for start := 0; start+batchSize <= s.Len(); start += batchSize {
		end := start + batchSize
		out = append(out, Batch{
			X:      s.slice(start, end),
			Labels: append([]int(nil), s.Labels[start:end]...),
		})
	}
	return out
}
