package dataset

import (
	"math/rand"
	"testing"

	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

func TestSpecsSane(t *testing.T) {
	for _, s := range []Spec{CIFAR10(), ImageNet()} {
		if s.NumTrain <= 0 || s.StorageBytes <= 0 || s.DecodeCPUSeconds < 0 {
			t.Fatalf("%s: invalid spec %+v", s.Name, s)
		}
		if s.DecodedBytes() != int64(s.Channels*s.Height*s.Width*4) {
			t.Fatalf("%s: DecodedBytes wrong", s.Name)
		}
	}
	if CIFAR10().NumTrain != 50000 {
		t.Fatal("CIFAR-10 should have 50k training samples")
	}
	in := ImageNet()
	if in.Height != 224 || in.Width != 224 {
		t.Fatal("ImageNet samples should decode to 224x224")
	}
	if in.StorageBytes < 50*1024 || in.StorageBytes > 200*1024 {
		t.Fatalf("ImageNet storage bytes implausible: %d", in.StorageBytes)
	}
}

func TestStepsPerEpoch(t *testing.T) {
	s := CIFAR10()
	if got := s.StepsPerEpoch(256); got != 195 {
		t.Fatalf("StepsPerEpoch(256) = %d, want 195", got)
	}
	if got := s.StepsPerEpoch(50000); got != 1 {
		t.Fatalf("StepsPerEpoch(full) = %d, want 1", got)
	}
	// Batch larger than the dataset still yields one step.
	if got := s.StepsPerEpoch(1 << 20); got != 1 {
		t.Fatalf("StepsPerEpoch(huge) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive batch")
		}
	}()
	s.StepsPerEpoch(0)
}

func TestNewRandomDeterminism(t *testing.T) {
	a := NewRandom(rand.New(rand.NewSource(5)), 10, 1, 4, 4, 3)
	b := NewRandom(rand.New(rand.NewSource(5)), 10, 1, 4, 4, 3)
	if !a.X.Equal(b.X) {
		t.Fatal("same seed must give same data")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
	}
	for _, l := range a.Labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestBatchesDropLastAndDeterministic(t *testing.T) {
	s := NewRandom(rand.New(rand.NewSource(6)), 10, 1, 2, 2, 2)
	batches := s.Batches(4)
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2 (drop-last)", len(batches))
	}
	for _, b := range batches {
		if b.X.Shape()[0] != 4 || len(b.Labels) != 4 {
			t.Fatalf("bad batch shape %v / %d labels", b.X.Shape(), len(b.Labels))
		}
	}
	// First batch must be samples 0..3 in order.
	per := 4
	for i := 0; i < 4*per; i++ {
		if batches[0].X.Data()[i] != s.X.Data()[i] {
			t.Fatal("batches must preserve sample order")
		}
	}
	// Mutating a batch must not corrupt the dataset (copy semantics).
	batches[0].X.Fill(0)
	if s.X.Data()[0] == 0 && s.X.Data()[1] == 0 {
		t.Fatal("Batches must copy data")
	}
}

func TestTeacherLabelledIsLearnableByTheLabeller(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labeller := nn.NewSequential(
		nn.NewFlatten(),
		nn.NewLinear(rng, 1*4*4, 3, true),
	)
	s := NewTeacherLabelled(rng, labeller, 32, 1, 4, 4, 3)
	// By construction the labeller itself achieves 100% accuracy.
	logits := labeller.Forward(s.X, false)
	if acc := nn.Accuracy(logits, s.Labels); acc != 1 {
		t.Fatalf("labeller accuracy on its own labels = %v, want 1", acc)
	}
	// Labels should not all be a single class for a random labeller.
	counts := map[int]int{}
	for _, l := range s.Labels {
		counts[l]++
	}
	if len(counts) < 2 {
		t.Fatalf("degenerate label distribution: %v", counts)
	}
}

func TestTeacherLabelledPanicsOnBadLabeller(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	labeller := nn.NewSequential(nn.NewFlatten(), nn.NewLinear(rng, 16, 5, true))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when labeller classes != requested classes")
		}
	}()
	NewTeacherLabelled(rng, labeller, 8, 1, 4, 4, 3)
}

func TestSliceIsolation(t *testing.T) {
	s := NewRandom(rand.New(rand.NewSource(9)), 6, 2, 2, 2, 2)
	b := s.slice(2, 4)
	if b.Shape()[0] != 2 {
		t.Fatalf("slice batch = %d, want 2", b.Shape()[0])
	}
	orig := s.X.At(2, 0, 0, 0)
	b.Set(orig+42, 0, 0, 0, 0)
	if s.X.At(2, 0, 0, 0) != orig {
		t.Fatal("slice must copy, not alias")
	}
	_ = tensor.New(1) // keep tensor import meaningful if asserts change
}
