package dataset

import (
	"math/rand"

	"pipebd/internal/tensor"
)

// NewTokens generates n uniformly random token sequences of length l over
// a vocabulary of the given size, with uniformly random labels: the
// sequence-workload counterpart of NewRandom. Token ids are stored as
// float32 values in an [N, L] tensor so batches travel the same tensor,
// wire, and engine paths as image batches.
//
// Generation is fully determined by (rng seed, n, l, vocab, classes) and
// draws in a fixed order — ids first, then labels — so ring workers can
// regenerate identical batches locally from a wire.DataSpec recipe
// instead of shipping inputs over the network.
func NewTokens(rng *rand.Rand, n, l, vocab, classes int) *Synthetic {
	if vocab <= 0 {
		panic("dataset: non-positive vocabulary size")
	}
	ids := tensor.New(n, l)
	d := ids.Data()
	for i := range d {
		d[i] = float32(rng.Intn(vocab))
	}
	s := &Synthetic{X: ids, Labels: make([]int, n), Classes: classes}
	for i := range s.Labels {
		s.Labels[i] = rng.Intn(classes)
	}
	return s
}
