// Package hw models the execution environment of the paper's experiments:
// GPUs with batch-dependent utilization, the PCIe interconnect, and the
// host's shared data-loading path (disk/page cache plus CPU decode).
//
// Since no GPU hardware is available to this reproduction, devices are
// analytic roofline models (see README.md). A device's time for one kernel
// invocation moving `bytes` of memory traffic while performing `flops`
// floating-point operations is
//
//	t = max(FLOPs / (PeakFLOPS · KernelEff), bytes / MemBandwidth) + LaunchOverhead
//
// The roofline maximum captures that low-arithmetic-intensity layers
// (depthwise convolutions, normalizations, early layers with huge feature
// maps) are bandwidth-bound — this is what makes ImageNet's first blocks
// dominate execution time in the paper's Fig. 5 even though their MAC
// counts are unremarkable. The additive per-invocation overhead captures
// kernel launch latency and low-occupancy tails; it is what makes small
// per-device batches slow (the paper's utilization argument), makes the
// faster GPU proportionally more launch-bound on small workloads (the
// Fig. 5 A6000-vs-2080Ti schedule divergence), and makes AHD's batch
// splitting cost something.
package hw

import "fmt"

// GPU is an analytic accelerator model.
type GPU struct {
	Name string

	// PeakFLOPS is the theoretical FP32 throughput in FLOP/s.
	PeakFLOPS float64

	// KernelEff is the sustained fraction of peak achieved by
	// well-shaped convolution kernels (0 < KernelEff <= 1).
	KernelEff float64

	// MemBandwidth is the effective device memory bandwidth in B/s
	// (published peak derated by an achievable fraction).
	MemBandwidth float64

	// LaunchOverhead is the fixed time per layer invocation in seconds
	// (kernel launch latency plus framework dispatch).
	LaunchOverhead float64

	// SaturationElems is the number of parallel output elements at which
	// a kernel reaches half of the device's sustained efficiency. Small
	// kernels (small per-device batch and/or small feature maps) leave
	// SMs under-filled, derating both compute and bandwidth — the
	// paper's "sufficient per-device batch size is critical" effect
	// ([17,18] in its references), expressed in the physically relevant
	// unit. Zero disables the derating.
	SaturationElems float64

	// MemBytes is the device memory capacity.
	MemBytes int64
}

// Utilization returns the occupancy factor in (0,1] for a kernel
// producing the given number of output elements:
// elems / (elems + SaturationElems).
func (g GPU) Utilization(elems float64) float64 {
	if g.SaturationElems <= 0 || elems <= 0 {
		return 1
	}
	return elems / (elems + g.SaturationElems)
}

// KernelTime returns the execution time of one kernel invocation under
// the roofline model: the slower of its compute and memory phases plus
// the launch overhead. Full occupancy is assumed; see KernelTimeElems.
func (g GPU) KernelTime(flops float64, bytes int64) float64 {
	return g.KernelTimeElems(flops, bytes, 0)
}

// KernelTimeElems is KernelTime with the occupancy derating for a kernel
// producing the given number of output elements (elems <= 0 assumes full
// occupancy).
func (g GPU) KernelTimeElems(flops float64, bytes int64, elems float64) float64 {
	if flops < 0 || bytes < 0 {
		panic(fmt.Sprintf("hw: negative kernel cost (flops=%v bytes=%d)", flops, bytes))
	}
	u := 1.0
	if elems > 0 {
		u = g.Utilization(elems)
	}
	compute := flops / (g.PeakFLOPS * g.KernelEff * u)
	memory := float64(bytes) / (g.MemBandwidth * u)
	t := compute
	if memory > t {
		t = memory
	}
	return t + g.LaunchOverhead
}

// EffectiveFLOPS returns the achieved arithmetic throughput for a kernel
// of the given size, including launch overhead and bandwidth ceiling.
func (g GPU) EffectiveFLOPS(flops float64, bytes int64) float64 {
	t := g.KernelTime(flops, bytes)
	if t == 0 {
		return 0
	}
	return flops / t
}

// Link is a point-to-point interconnect model (PCIe through host bridge).
type Link struct {
	Name string
	// BandwidthBytes is the effective unidirectional bandwidth in B/s.
	BandwidthBytes float64
	// Latency is the fixed per-transfer latency in seconds.
	Latency float64
}

// TransferTime returns the time to move n bytes across the link.
func (l Link) TransferTime(n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("hw: negative transfer size %d", n))
	}
	return l.Latency + float64(n)/l.BandwidthBytes
}

// AllReduceTime returns the time for a ring all-reduce of n bytes among k
// participants: 2·(k-1)/k · n / bandwidth plus per-step latencies. For k=1
// it returns zero (no communication needed).
func (l Link) AllReduceTime(n int64, k int) float64 {
	if k <= 1 {
		return 0
	}
	steps := float64(2 * (k - 1))
	perStep := float64(n) / float64(k)
	return steps * (l.Latency + perStep/l.BandwidthBytes)
}

// Host models the shared CPU/storage side of data loading. The loading of
// one batch is pipelined between storage reads and CPU decode, so its
// steady-state cost is the maximum of the two; the resource is shared
// system-wide (a single loader serves every device), which the simulator
// enforces with a mutual-exclusion resource.
type Host struct {
	Name string
	// StorageBandwidth is the sustained read bandwidth of the dataset
	// source (page cache / NVMe / disk array) in B/s.
	StorageBandwidth float64
	// Cores is the number of CPU cores available for decode workers.
	Cores int
	// PerBatchOverhead is the fixed cost a *consumer* pays per batch it
	// ingests (iterator dispatch, collation, host-to-device staging on
	// the training process). Executors charge it on the device timeline,
	// so strategies that ingest more batches per device per epoch pay
	// proportionally — the paper's "extra data loading" overhead, which
	// dominates for small-sample datasets like CIFAR even when storage
	// bandwidth is plentiful.
	PerBatchOverhead float64

	// StepOverhead is the fixed host-side cost of one training-loop
	// iteration (optimizer housekeeping, loss bookkeeping, dispatch
	// stalls between phases). Every independent training loop pays it
	// per step: the DP baseline once per block pass, LS once per task,
	// Pipe-BD once per pipelined step — so schedules that consolidate
	// loops amortize it. Calibrated against Table II's epoch times.
	StepOverhead float64
}

// LoadTime returns the time for the shared loader to produce a batch of
// the given total storage bytes and total decode CPU-seconds.
func (h Host) LoadTime(storageBytes int64, decodeCPUSeconds float64) float64 {
	read := float64(storageBytes) / h.StorageBandwidth
	decode := decodeCPUSeconds / float64(h.Cores)
	if read > decode {
		return read
	}
	return decode
}

// System is a complete single-node training environment: N identical GPUs,
// a uniform interconnect, and one shared host loader.
type System struct {
	Name string
	GPUs []GPU
	Link Link
	Host Host
}

// NumDevices returns the number of GPUs.
func (s System) NumDevices() int { return len(s.GPUs) }

// Validate reports configuration errors.
func (s System) Validate() error {
	if len(s.GPUs) == 0 {
		return fmt.Errorf("hw: system %q has no GPUs", s.Name)
	}
	for _, g := range s.GPUs {
		if g.PeakFLOPS <= 0 || g.KernelEff <= 0 || g.KernelEff > 1 {
			return fmt.Errorf("hw: GPU %q has invalid throughput model", g.Name)
		}
		if g.MemBandwidth <= 0 {
			return fmt.Errorf("hw: GPU %q has invalid memory bandwidth", g.Name)
		}
		if g.LaunchOverhead < 0 || g.MemBytes <= 0 {
			return fmt.Errorf("hw: GPU %q has invalid overhead/memory", g.Name)
		}
	}
	if s.Link.BandwidthBytes <= 0 || s.Link.Latency < 0 {
		return fmt.Errorf("hw: system %q has invalid link", s.Name)
	}
	if s.Host.StorageBandwidth <= 0 || s.Host.Cores <= 0 {
		return fmt.Errorf("hw: system %q has invalid host", s.Name)
	}
	return nil
}
