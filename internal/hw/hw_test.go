package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelTimeMonotonicInFLOPs(t *testing.T) {
	g := RTXA6000()
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1e15)), math.Abs(math.Mod(b, 1e15))
		lo, hi := math.Min(a, b), math.Max(a, b)
		return g.KernelTime(lo, 0) <= g.KernelTime(hi, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTimeMonotonicInBytes(t *testing.T) {
	g := RTXA6000()
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return g.KernelTime(0, lo) <= g.KernelTime(0, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTimeHasLaunchFloor(t *testing.T) {
	g := RTXA6000()
	if got := g.KernelTime(0, 0); got != g.LaunchOverhead {
		t.Fatalf("empty kernel time = %v, want launch overhead %v", got, g.LaunchOverhead)
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	g := GPU{PeakFLOPS: 1e12, KernelEff: 1, MemBandwidth: 1e11, LaunchOverhead: 0, MemBytes: 1}
	// Compute-bound: 1e12 FLOPs, tiny traffic -> 1 s.
	if got := g.KernelTime(1e12, 10); math.Abs(got-1) > 1e-9 {
		t.Fatalf("compute-bound time = %v, want 1", got)
	}
	// Memory-bound: tiny FLOPs, 1e11 bytes -> 1 s.
	if got := g.KernelTime(10, 1e11); math.Abs(got-1) > 1e-9 {
		t.Fatalf("memory-bound time = %v, want 1", got)
	}
	// Balanced point takes max, not sum.
	if got := g.KernelTime(1e12, 1e11); math.Abs(got-1) > 1e-9 {
		t.Fatalf("balanced time = %v, want 1 (max, not sum)", got)
	}
}

func TestKernelTimePanicsOnNegative(t *testing.T) {
	for _, probe := range []func(){
		func() { RTXA6000().KernelTime(-1, 0) },
		func() { RTXA6000().KernelTime(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			probe()
		}()
	}
}

func TestEffectiveFLOPSSaturates(t *testing.T) {
	g := RTXA6000()
	small := g.EffectiveFLOPS(1e6, 0)
	big := g.EffectiveFLOPS(1e12, 0)
	if small >= big {
		t.Fatalf("utilization must grow with work: %v vs %v", small, big)
	}
	ceiling := g.PeakFLOPS * g.KernelEff
	if big > ceiling {
		t.Fatalf("effective FLOPS %v above sustained ceiling %v", big, ceiling)
	}
	if big < 0.95*ceiling {
		t.Fatalf("huge kernels should approach the ceiling: %v vs %v", big, ceiling)
	}
	// Bandwidth-bound kernels cannot reach the compute ceiling.
	bandwidthBound := g.EffectiveFLOPS(1e9, 1e9)
	if bandwidthBound >= 0.5*ceiling {
		t.Fatalf("bandwidth-bound kernel too fast: %v", bandwidthBound)
	}
}

func TestA6000FasterButMoreLaunchBound(t *testing.T) {
	a, turing := RTXA6000(), RTX2080Ti()
	// Big kernels: A6000 wins on raw compute.
	if a.KernelTime(1e12, 0) >= turing.KernelTime(1e12, 0) {
		t.Fatal("A6000 must be faster on large kernels")
	}
	// The ratio of launch overhead to compute time must be higher on the
	// A6000 — this drives the Fig. 5 schedule divergence.
	small := 1e7
	ra := a.LaunchOverhead / (small / (a.PeakFLOPS * a.KernelEff))
	rt := turing.LaunchOverhead / (small / (turing.PeakFLOPS * turing.KernelEff))
	if ra <= rt {
		t.Fatalf("A6000 should be relatively more launch-bound: %v vs %v", ra, rt)
	}
	// Compute:bandwidth ratio is also higher on the A6000, so
	// bandwidth-bound blocks stick out more there (Fig. 5 story).
	ia := a.PeakFLOPS * a.KernelEff / a.MemBandwidth
	it := turing.PeakFLOPS * turing.KernelEff / turing.MemBandwidth
	if ia <= it {
		t.Fatalf("A6000 should have higher compute:bandwidth ratio: %v vs %v", ia, it)
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{BandwidthBytes: 1e9, Latency: 1e-5}
	if got := l.TransferTime(0); got != 1e-5 {
		t.Fatalf("zero transfer = %v, want latency", got)
	}
	if got := l.TransferTime(1e9); math.Abs(got-(1+1e-5)) > 1e-12 {
		t.Fatalf("1GB transfer = %v, want ~1s", got)
	}
}

func TestAllReduceTime(t *testing.T) {
	l := Link{BandwidthBytes: 1e9, Latency: 0}
	// Ring all-reduce of n bytes over k devices moves 2(k-1)/k · n bytes.
	n := int64(1e9)
	got := l.AllReduceTime(n, 4)
	want := 2.0 * 3.0 / 4.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AllReduceTime = %v, want %v", got, want)
	}
	if l.AllReduceTime(n, 1) != 0 {
		t.Fatal("all-reduce with one participant must be free")
	}
}

func TestAllReduceGrowsWithParticipants(t *testing.T) {
	l := PCIe4()
	prev := 0.0
	for k := 1; k <= 8; k++ {
		cur := l.AllReduceTime(100<<20, k)
		if cur < prev {
			t.Fatalf("all-reduce time must not decrease with k: k=%d %v < %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestHostLoadTimePipelined(t *testing.T) {
	h := Host{StorageBandwidth: 1e9, Cores: 10}
	// Read-bound: 1 GB at 1 GB/s = 1 s, decode 1 CPU-s / 10 cores = 0.1 s.
	if got := h.LoadTime(1e9, 1); got != 1 {
		t.Fatalf("read-bound load = %v, want 1", got)
	}
	// Decode-bound.
	if got := h.LoadTime(1e6, 50); got != 5 {
		t.Fatalf("decode-bound load = %v, want 5", got)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, s := range []System{A6000x4(), RTX2080Tix4()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s.NumDevices() != 4 {
			t.Fatalf("%s: want 4 devices", s.Name)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := A6000x4()
	cases := map[string]func(*System){
		"no gpus":      func(s *System) { s.GPUs = nil },
		"zero peak":    func(s *System) { s.GPUs[0].PeakFLOPS = 0 },
		"eff > 1":      func(s *System) { s.GPUs[0].KernelEff = 1.5 },
		"no bandwidth": func(s *System) { s.GPUs[0].MemBandwidth = 0 },
		"no memory":    func(s *System) { s.GPUs[0].MemBytes = 0 },
		"dead link":    func(s *System) { s.Link.BandwidthBytes = 0 },
		"no loader":    func(s *System) { s.Host.StorageBandwidth = 0 },
		"zero cores":   func(s *System) { s.Host.Cores = 0 },
	}
	for name, mutate := range cases {
		s := good
		s.GPUs = append([]GPU(nil), good.GPUs...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", name)
		}
	}
}

func TestExtraPresetsValidate(t *testing.T) {
	for _, gpu := range []GPU{TeslaV100(), A100SXM(), RTX3090()} {
		sys := Homogeneous("4x "+gpu.Name, 4, gpu, NVLink(), EPYC7302Host())
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", gpu.Name, err)
		}
	}
}

func TestHomogeneousConstructor(t *testing.T) {
	sys := Homogeneous("8x V100", 8, TeslaV100(), NVLink(), EPYC7302Host())
	if sys.NumDevices() != 8 {
		t.Fatalf("got %d devices, want 8", sys.NumDevices())
	}
	for _, g := range sys.GPUs {
		if g.Name != "Tesla V100" {
			t.Fatal("devices must be identical")
		}
	}
}

func TestNVLinkFasterThanPCIe(t *testing.T) {
	n := int64(100 << 20)
	if NVLink().TransferTime(n) >= PCIe4().TransferTime(n) {
		t.Fatal("NVLink must beat PCIe 4.0")
	}
}

func TestA100HasHighestBandwidth(t *testing.T) {
	if A100SXM().MemBandwidth <= RTX3090().MemBandwidth {
		t.Fatal("A100 HBM should out-bandwidth GDDR6X")
	}
}
