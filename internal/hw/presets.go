package hw

// Presets mirroring Table I of the paper. Peak FLOP/s figures are the
// published FP32 numbers; KernelEff and LaunchOverhead are calibrated so
// that simulated baseline epoch times land in the same regime as the
// paper's Table II (the experiments compare schedule *shapes*, which are
// insensitive to moderate calibration error).

const (
	gib = int64(1) << 30
	gb  = 1e9
)

// RTXA6000 returns the analytic model of an NVIDIA RTX A6000 (Ampere,
// 38.7 TFLOPS FP32 peak, 768 GB/s GDDR6, 48 GiB).
func RTXA6000() GPU {
	return GPU{
		Name:            "RTX A6000",
		PeakFLOPS:       38.7e12,
		KernelEff:       0.30,
		MemBandwidth:    0.60 * 768e9,
		LaunchOverhead:  25e-6,
		SaturationElems: 400e3,
		MemBytes:        48 * gib,
	}
}

// RTX2080Ti returns the analytic model of an NVIDIA RTX 2080 Ti (Turing,
// 13.45 TFLOPS FP32 peak, 616 GB/s GDDR6, 11 GiB).
func RTX2080Ti() GPU {
	return GPU{
		Name:            "RTX 2080Ti",
		PeakFLOPS:       13.45e12,
		KernelEff:       0.35,
		MemBandwidth:    0.60 * 616e9,
		LaunchOverhead:  22e-6,
		SaturationElems: 140e3,
		MemBytes:        11 * gib,
	}
}

// PCIe4 returns an effective PCIe 4.0 ×16 point-to-point link through the
// host bridge.
func PCIe4() Link {
	return Link{Name: "PCIe 4.0 x16", BandwidthBytes: 20 * gb, Latency: 12e-6}
}

// PCIe3 returns an effective PCIe 3.0 ×16 link.
func PCIe3() Link {
	return Link{Name: "PCIe 3.0 x16", BandwidthBytes: 10 * gb, Latency: 12e-6}
}

// EPYC7302Host returns the default system's host: one AMD EPYC 7302
// (16 cores) with NVMe-class storage bandwidth.
func EPYC7302Host() Host {
	return Host{Name: "EPYC 7302 (16c)", StorageBandwidth: 3.2 * gb, Cores: 16,
		PerBatchOverhead: 2.5e-3, StepOverhead: 25e-3}
}

// Xeon4214Host returns the alternative system's host: two Intel Xeon
// Silver 4214 (2×12 cores) with SATA/NAS-class storage bandwidth.
func Xeon4214Host() Host {
	return Host{Name: "2x Xeon Silver 4214 (24c)", StorageBandwidth: 2.0 * gb, Cores: 24,
		PerBatchOverhead: 3.0e-3, StepOverhead: 32e-3}
}

// A6000x4 returns the paper's default environment: 4× RTX A6000 on PCIe
// 4.0 with the EPYC host (Table I, "Default").
func A6000x4() System {
	gpus := make([]GPU, 4)
	for i := range gpus {
		gpus[i] = RTXA6000()
	}
	return System{Name: "4x RTX A6000", GPUs: gpus, Link: PCIe4(), Host: EPYC7302Host()}
}

// RTX2080Tix4 returns the paper's alternative environment: 4× RTX 2080 Ti
// on PCIe 3.0 with the dual-Xeon host (Table I, "Alternative").
func RTX2080Tix4() System {
	gpus := make([]GPU, 4)
	for i := range gpus {
		gpus[i] = RTX2080Ti()
	}
	return System{Name: "4x RTX 2080Ti", GPUs: gpus, Link: PCIe3(), Host: Xeon4214Host()}
}

// Additional accelerator presets beyond Table I, for custom-system
// experiments (examples/custom_hardware, heterogeneous studies). Peak
// figures are published numbers; derates follow the same calibration as
// the Table I devices.

// TeslaV100 returns the analytic model of an NVIDIA V100 SXM2 (Volta,
// 15.7 TFLOPS FP32, 900 GB/s HBM2, 32 GiB).
func TeslaV100() GPU {
	return GPU{
		Name:            "Tesla V100",
		PeakFLOPS:       15.7e12,
		KernelEff:       0.34,
		MemBandwidth:    0.62 * 900e9,
		LaunchOverhead:  24e-6,
		SaturationElems: 160e3,
		MemBytes:        32 * gib,
	}
}

// A100SXM returns the analytic model of an NVIDIA A100 SXM4 (Ampere,
// 19.5 TFLOPS FP32, 2 TB/s HBM2e, 80 GiB).
func A100SXM() GPU {
	return GPU{
		Name:            "A100 SXM4",
		PeakFLOPS:       19.5e12,
		KernelEff:       0.38,
		MemBandwidth:    0.62 * 2039e9,
		LaunchOverhead:  24e-6,
		SaturationElems: 440e3,
		MemBytes:        80 * gib,
	}
}

// RTX3090 returns the analytic model of an NVIDIA RTX 3090 (Ampere,
// 35.6 TFLOPS FP32, 936 GB/s GDDR6X, 24 GiB).
func RTX3090() GPU {
	return GPU{
		Name:            "RTX 3090",
		PeakFLOPS:       35.6e12,
		KernelEff:       0.30,
		MemBandwidth:    0.60 * 936e9,
		LaunchOverhead:  25e-6,
		SaturationElems: 380e3,
		MemBytes:        24 * gib,
	}
}

// NVLink returns a 300 GB/s-class NVLink bridge model for systems that
// have one (the Table I machines use PCIe; NVLink is provided for custom
// experiments).
func NVLink() Link {
	return Link{Name: "NVLink", BandwidthBytes: 120e9, Latency: 5e-6}
}

// Homogeneous returns a system of n identical GPUs on the given link and
// host — the generic constructor behind custom-system experiments.
func Homogeneous(name string, n int, gpu GPU, link Link, host Host) System {
	gpus := make([]GPU, n)
	for i := range gpus {
		gpus[i] = gpu
	}
	return System{Name: name, GPUs: gpus, Link: link, Host: host}
}
