package model

import (
	"fmt"
)

// invertedResidualStage describes one MobileNetV2 stage: expansion factor
// t, output channels c, repeat count n, first-layer stride s.
type invertedResidualStage struct {
	t, c, n, s int
}

// mobileNetV2Stages is the standard MobileNetV2 configuration
// (Sandler et al., CVPR 2018, Table 2).
var mobileNetV2Stages = []invertedResidualStage{
	{1, 16, 1, 1},
	{6, 24, 2, 2},
	{6, 32, 3, 2},
	{6, 64, 4, 2},
	{6, 96, 3, 1},
	{6, 160, 3, 2},
	{6, 320, 1, 1},
}

// mobileNetV2CIFARStrides overrides the downsampling pattern for 32×32
// inputs (stem stride 1; stages 2 and 3 stride 1), the standard CIFAR
// adaptation that preserves enough spatial resolution.
var mobileNetV2CIFARStrides = []int{1, 1, 2, 2, 1, 2, 1}

// invertedResidual appends one MBConv layer (expansion t) to the builder.
// A residual add is emitted when stride is 1 and channels are preserved.
func invertedResidual(b *builder, name string, t, outC, stride int) {
	inC := b.c
	hidden := inC * t
	if t != 1 {
		b.conv(name+".pw", hidden, 1, 1, 0, false)
		b.bn(name + ".pw.bn")
		b.act(name + ".pw.relu6")
	}
	b.dwconv(name+".dw", 3, stride, 1)
	b.bn(name + ".dw.bn")
	b.act(name + ".dw.relu6")
	b.conv(name+".pwl", outC, 1, 1, 0, false)
	b.bn(name + ".pwl.bn")
	if stride == 1 && inC == outC {
		b.residualAdd(name + ".add")
	}
}

// MobileNetV2 builds the teacher network for the NAS workload, split into
// the six distillation blocks used by DNA-style blockwise NAS: block 0
// holds the stem and stages 1-2 (the large-feature-map prefix whose
// bandwidth-bound layers dominate ImageNet execution time, Fig. 5 of the
// paper); blocks 1-4 hold stages 3-6; block 5 holds stage 7, the 1×1 head
// convolution, pooling, and the classifier.
//
// imagenet selects 224×224 geometry with the standard stride pattern;
// otherwise the 32×32 CIFAR adaptation is used. classes sizes the
// classifier (1000 for ImageNet, 10 for CIFAR-10), which is what moves
// parameters from 3.50 M to 2.24 M between the two variants in Table II.
func MobileNetV2(imagenet bool, classes int) Model {
	res := 32
	stemStride := 1
	strides := mobileNetV2CIFARStrides
	variant := "cifar"
	if imagenet {
		res = 224
		stemStride = 2
		strides = []int{1, 2, 2, 2, 1, 2, 1}
		variant = "imagenet"
	}

	b := newBuilder(3, res, res)
	b.conv("stem.conv", 32, 3, stemStride, 1, false)
	b.bn("stem.bn")
	b.act("stem.relu6")
	b.endUnit("stem")

	for si, st := range mobileNetV2Stages {
		stride := strides[si]
		for li := 0; li < st.n; li++ {
			s := 1
			if li == 0 {
				s = stride
			}
			name := fmt.Sprintf("s%d.l%d", si+1, li)
			invertedResidual(b, name, st.t, st.c, s)
			b.endUnit(name)
		}
		// Block boundaries after stages 2..6 (DNA's six-block split).
		switch si {
		case 1:
			b.cut("block0")
		case 2:
			b.cut("block1")
		case 3:
			b.cut("block2")
		case 4:
			b.cut("block3")
		case 5:
			b.cut("block4")
		}
	}

	b.conv("head.conv", 1280, 1, 1, 0, false)
	b.bn("head.bn")
	b.act("head.relu6")
	b.gap("head.gap")
	b.flatten("head.flatten")
	b.linear("classifier", classes)
	b.endUnit("head")
	b.cut("block5")

	return b.model("mobilenetv2-" + variant)
}
