package model

import (
	"fmt"

	"pipebd/internal/cost"
	"pipebd/internal/dataset"
)

// Workload bundles a blockwise-distillation training job: a pretrained
// teacher, the student under training, and the dataset. Teacher and
// student must agree on block count and unit count, with aligned
// boundaries (identical activation geometry at every boundary), which is
// what lets teacher activations feed student blocks directly.
type Workload struct {
	Name    string
	Teacher Model
	Student Model
	Data    dataset.Spec
	// LSAtBlockGranularity selects the task granularity for the LS
	// baseline: NAS distillation losses are defined per DNA block, so a
	// block is the smallest independently trainable task; compression
	// replaces individual layers, so LS packs layer units. Six blocks on
	// four devices is the paper's "insufficient layers" imbalance.
	LSAtBlockGranularity bool
}

// LSTasks returns the teacher/student task lists the LS baseline packs:
// blocks for NAS workloads, layer units for compression workloads.
func (w Workload) LSTasks() (teacher, student []cost.Block) {
	if w.LSAtBlockGranularity {
		return w.Teacher.Net.Blocks, w.Student.Net.Blocks
	}
	return w.Teacher.Units, w.Student.Units
}

// NumBlocks returns the (shared) block count.
func (w Workload) NumBlocks() int { return len(w.Teacher.Net.Blocks) }

// Validate checks teacher/student alignment.
func (w Workload) Validate() error {
	if err := w.Teacher.Net.Validate(); err != nil {
		return err
	}
	if err := w.Student.Net.Validate(); err != nil {
		return err
	}
	if tb, sb := len(w.Teacher.Net.Blocks), len(w.Student.Net.Blocks); tb != sb {
		return fmt.Errorf("model: workload %q teacher has %d blocks, student %d", w.Name, tb, sb)
	}
	if tu, su := len(w.Teacher.Units), len(w.Student.Units); tu != su {
		return fmt.Errorf("model: workload %q teacher has %d units, student %d", w.Name, tu, su)
	}
	for i := range w.Teacher.Net.Blocks {
		tIn := w.Teacher.Net.Blocks[i].InBytes(1)
		sIn := w.Student.Net.Blocks[i].InBytes(1)
		if tIn != sIn {
			return fmt.Errorf("model: workload %q block %d teacher input %dB != student input %dB",
				w.Name, i, tIn, sIn)
		}
	}
	return nil
}

// NAS returns the neural-architecture-search workload: MobileNetV2
// teacher distilling into a ProxylessNAS supernet student (the DNA [9]
// setup the paper evaluates).
func NAS(imagenet bool) Workload {
	classes := 10
	data := dataset.CIFAR10()
	name := "nas-cifar10"
	if imagenet {
		classes = 1000
		data = dataset.ImageNet()
		name = "nas-imagenet"
	}
	w := Workload{
		Name:                 name,
		Teacher:              MobileNetV2(imagenet, classes),
		Student:              ProxylessNASSupernet(imagenet, classes),
		Data:                 data,
		LSAtBlockGranularity: true,
	}
	if err := w.Validate(); err != nil {
		panic(err)
	}
	return w
}

// Compression returns the model-compression workload: VGG-16 teacher
// distilling into a DS-Conv student (the Blakeney et al. [7] setup).
func Compression(imagenet bool) Workload {
	classes := 10
	data := dataset.CIFAR10()
	name := "compression-cifar10"
	if imagenet {
		classes = 1000
		data = dataset.ImageNet()
		name = "compression-imagenet"
	}
	w := Workload{
		Name:    name,
		Teacher: VGG16(imagenet, classes),
		Student: DSConvStudent(imagenet, classes),
		Data:    data,
	}
	if err := w.Validate(); err != nil {
		panic(err)
	}
	return w
}

// AllWorkloads returns the four workload configurations of Table II in
// the paper's order.
func AllWorkloads() []Workload {
	return []Workload{NAS(false), NAS(true), Compression(false), Compression(true)}
}
