package model

import "fmt"

// EfficientNet-B0 (Tan & Le, ICML 2019) — the teacher family used by
// DNA [9], the blockwise-NAS system whose parallelization the paper's DP
// baseline follows. Provided as a zoo entry for custom workloads; its
// MBConv blocks carry squeeze-and-excitation gates, exercising the cost
// model's SE layer kind.

// efficientNetB0Stages: expansion t, output channels c, repeats n,
// stride s, depthwise kernel k.
var efficientNetB0Stages = []struct {
	t, c, n, s, k int
}{
	{1, 16, 1, 1, 3},
	{6, 24, 2, 2, 3},
	{6, 40, 2, 2, 5},
	{6, 80, 3, 2, 3},
	{6, 112, 3, 1, 5},
	{6, 192, 4, 2, 5},
	{6, 320, 1, 1, 3},
}

// mbconvSE appends one EfficientNet MBConv layer: expansion, depthwise
// convolution, squeeze-and-excitation (squeeze width = blockInC/4, the
// B0 ratio), projection, and a residual add when the geometry allows.
func mbconvSE(b *builder, name string, t, outC, stride, kernel int) {
	inC := b.c
	hidden := inC * t
	if t != 1 {
		b.conv(name+".pw", hidden, 1, 1, 0, false)
		b.bn(name + ".pw.bn")
		b.act(name + ".pw.swish")
	}
	b.dwconv(name+".dw", kernel, stride, kernel/2)
	b.bn(name + ".dw.bn")
	b.act(name + ".dw.swish")
	squeeze := inC / 4
	if squeeze < 1 {
		squeeze = 1
	}
	b.se(name+".se", squeeze)
	b.conv(name+".pwl", outC, 1, 1, 0, false)
	b.bn(name + ".pwl.bn")
	if stride == 1 && inC == outC {
		b.residualAdd(name + ".add")
	}
}

// EfficientNetB0 builds the 5.3M-parameter EfficientNet-B0 split into the
// six distillation blocks DNA uses (stem+stages 1-2, stages 3-6 singly,
// stage 7 with the head). imagenet selects 224×224 geometry (~390 MMACs);
// otherwise the 32×32 CIFAR adaptation is built.
func EfficientNetB0(imagenet bool, classes int) Model {
	res := 32
	stemStride := 1
	strides := []int{1, 1, 2, 2, 1, 2, 1}
	variant := "cifar"
	if imagenet {
		res = 224
		stemStride = 2
		strides = []int{1, 2, 2, 2, 1, 2, 1}
		variant = "imagenet"
	}
	b := newBuilder(3, res, res)
	b.conv("stem.conv", 32, 3, stemStride, 1, false)
	b.bn("stem.bn")
	b.act("stem.swish")
	b.endUnit("stem")

	for si, st := range efficientNetB0Stages {
		stride := strides[si]
		for li := 0; li < st.n; li++ {
			s := 1
			if li == 0 {
				s = stride
			}
			name := fmt.Sprintf("s%d.l%d", si+1, li)
			mbconvSE(b, name, st.t, st.c, s, st.k)
			b.endUnit(name)
		}
		switch si {
		case 1:
			b.cut("block0")
		case 2:
			b.cut("block1")
		case 3:
			b.cut("block2")
		case 4:
			b.cut("block3")
		case 5:
			b.cut("block4")
		}
	}

	b.conv("head.conv", 1280, 1, 1, 0, false)
	b.bn("head.bn")
	b.act("head.swish")
	b.gap("head.gap")
	b.flatten("head.flatten")
	b.linear("classifier", classes)
	b.endUnit("head")
	b.cut("block5")
	return b.model("efficientnet-b0-" + variant)
}
