// Package model is the model zoo: cost-model descriptions of the four
// architectures the paper evaluates (MobileNetV2 and ProxylessNAS for the
// NAS workload; VGG-16 and its DS-Conv student for model compression),
// split into distillation blocks the same way the paper's workloads are.
//
// The architectures are described by exact layer shapes, from which the
// cost package derives parameters, MACs, activation sizes, and execution
// times. Unit tests check the derived parameter and MAC counts against
// the values reported in Table II of the paper wherever the architecture
// is fully determined.
package model

import (
	"fmt"

	"pipebd/internal/cost"
)

// Model bundles a network's coarse block split (used by teacher relaying
// and the DP baseline) with its fine layerwise split into units (used by
// the LS baseline's bin packing). Unit boundaries are a strict refinement
// of block boundaries.
type Model struct {
	Net   cost.Network
	Units []cost.Block
}

// builder accumulates layers while tracking the current tensor geometry,
// and cuts blocks at distillation boundaries and units at layerwise
// boundaries.
type builder struct {
	c, h, w       int
	scale         float64 // ComputeScale/StoreScale applied to appended layers
	pendingBranch bool    // next appended layer starts a parallel branch

	layers []cost.Layer
	blocks []cost.Block

	unitLayers []cost.Layer
	units      []cost.Block
}

func newBuilder(c, h, w int) *builder {
	return &builder{c: c, h: h, w: w, scale: 1}
}

func (b *builder) add(l cost.Layer) {
	l.ComputeScale = b.scale
	l.StoreScale = b.scale
	if b.pendingBranch {
		l.BranchStart = true
		b.pendingBranch = false
	}
	b.layers = append(b.layers, l)
	b.unitLayers = append(b.unitLayers, l)
}

// endUnit closes the current layerwise unit under the given name.
func (b *builder) endUnit(name string) {
	if len(b.unitLayers) == 0 {
		panic(fmt.Sprintf("model: ending empty unit %q", name))
	}
	b.units = append(b.units, cost.Block{Name: name, Layers: b.unitLayers})
	b.unitLayers = nil
}

// parallel emits n alternative branches that all consume the current
// activation (a NAS supernet's candidate operations). When sampled is
// true, one branch is sampled per training step (path-sampling NAS), so
// each branch's layers carry ComputeScale and StoreScale divided by n —
// the expected per-step cost — while parameters remain fully counted.
// When sampled is false, every branch executes every step (weighted-sum
// differentiable NAS, the formulation the paper describes: architecture
// parameters give each candidate's selection probability and all
// candidates contribute to the block output). All branches must end with
// identical geometry.
func (b *builder) parallel(n int, sampled bool, branch func(i int)) {
	if n <= 0 {
		panic("model: parallel requires n > 0")
	}
	inC, inH, inW := b.c, b.h, b.w
	outerScale := b.scale
	if sampled {
		b.scale = outerScale / float64(n)
	}
	var outC, outH, outW int
	for i := 0; i < n; i++ {
		b.c, b.h, b.w = inC, inH, inW
		b.pendingBranch = true
		branch(i)
		if i == 0 {
			outC, outH, outW = b.c, b.h, b.w
		} else if b.c != outC || b.h != outH || b.w != outW {
			panic(fmt.Sprintf("model: parallel branch %d ends at [%d,%d,%d], others at [%d,%d,%d]",
				i, b.c, b.h, b.w, outC, outH, outW))
		}
	}
	b.pendingBranch = false
	b.scale = outerScale
	b.c, b.h, b.w = outC, outH, outW
}

// conv appends a standard convolution and advances the geometry.
func (b *builder) conv(name string, outC, k, stride, pad int, bias bool) {
	l := cost.Layer{Name: name, Kind: cost.Conv, InC: b.c, OutC: outC,
		InH: b.h, InW: b.w, Kernel: k, Stride: stride, Pad: pad, Bias: bias}
	b.add(l)
	b.c, b.h, b.w = outC, l.OutH(), l.OutW()
}

// dwconv appends a depthwise convolution.
func (b *builder) dwconv(name string, k, stride, pad int) {
	l := cost.Layer{Name: name, Kind: cost.DWConv, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, Kernel: k, Stride: stride, Pad: pad}
	b.add(l)
	b.h, b.w = l.OutH(), l.OutW()
}

// bn appends a batch normalization over the current channels.
func (b *builder) bn(name string) {
	b.add(cost.Layer{Name: name, Kind: cost.BatchNorm, InC: b.c, OutC: b.c, InH: b.h, InW: b.w})
}

// act appends an elementwise activation.
func (b *builder) act(name string) {
	b.add(cost.Layer{Name: name, Kind: cost.Act, InC: b.c, OutC: b.c, InH: b.h, InW: b.w})
}

// pool appends a non-overlapping pooling layer.
func (b *builder) pool(name string, k int) {
	l := cost.Layer{Name: name, Kind: cost.Pool, InC: b.c, OutC: b.c, InH: b.h, InW: b.w, Kernel: k}
	b.add(l)
	b.h, b.w = l.OutH(), l.OutW()
}

// gap appends global average pooling.
func (b *builder) gap(name string) {
	b.add(cost.Layer{Name: name, Kind: cost.GlobalPool, InC: b.c, OutC: b.c, InH: b.h, InW: b.w})
	b.h, b.w = 1, 1
}

// flatten folds spatial dimensions into channels.
func (b *builder) flatten(name string) {
	l := cost.Layer{Name: name, Kind: cost.Flatten, InC: b.c, OutC: b.c * b.h * b.w, InH: b.h, InW: b.w}
	b.add(l)
	b.c, b.h, b.w = l.NextC(), 1, 1
}

// linear appends a fully connected layer.
func (b *builder) linear(name string, outC int) {
	b.add(cost.Layer{Name: name, Kind: cost.Linear, InC: b.c, OutC: outC, InH: 1, InW: 1, Bias: true})
	b.c = outC
}

// embed appends a token + positional embedding lookup: [N, L] ids in,
// [N, L, dim] hidden states out. Sequence geometry rides the spatial
// fields (h = sequence length, w = 1).
func (b *builder) embed(name string, vocab, dim int) {
	b.add(cost.Layer{Name: name, Kind: cost.Embed, InC: 1, OutC: dim,
		InH: b.h, InW: 1, Kernel: vocab})
	b.c = dim
}

// attn appends multi-head self-attention over the current sequence.
func (b *builder) attn(name string, heads int) {
	b.add(cost.Layer{Name: name, Kind: cost.Attn, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, Kernel: heads, Bias: true})
}

// lnorm appends a layer normalization over the current channels.
func (b *builder) lnorm(name string) {
	b.add(cost.Layer{Name: name, Kind: cost.LayerNorm, InC: b.c, OutC: b.c, InH: b.h, InW: b.w})
}

// plinear appends a position-wise linear layer: the same weights applied
// at every sequence position (the transformer MLP). Unlike linear it
// keeps the current spatial/sequence geometry.
func (b *builder) plinear(name string, outC int) {
	b.add(cost.Layer{Name: name, Kind: cost.Linear, InC: b.c, OutC: outC,
		InH: b.h, InW: b.w, Bias: true})
	b.c = outC
}

// se appends a squeeze-and-excitation gate over the current channels with
// the given squeeze width.
func (b *builder) se(name string, squeeze int) {
	b.add(cost.Layer{Name: name, Kind: cost.SE, InC: b.c, OutC: b.c,
		InH: b.h, InW: b.w, Kernel: squeeze})
}

// residualAdd appends the elementwise addition closing a residual branch.
func (b *builder) residualAdd(name string) {
	b.add(cost.Layer{Name: name, Kind: cost.Add, InC: b.c, OutC: b.c, InH: b.h, InW: b.w})
}

// cut closes the current block under the given name. Every block boundary
// must also be a unit boundary (blocks are composed of whole units).
func (b *builder) cut(name string) {
	if len(b.layers) == 0 {
		panic(fmt.Sprintf("model: cutting empty block %q", name))
	}
	if len(b.unitLayers) != 0 {
		panic(fmt.Sprintf("model: block %q cut inside an open unit", name))
	}
	b.blocks = append(b.blocks, cost.Block{Name: name, Layers: b.layers})
	b.layers = nil
}

// model finalizes the builder into a validated Model.
func (b *builder) model(name string) Model {
	if len(b.layers) != 0 || len(b.unitLayers) != 0 {
		panic(fmt.Sprintf("model: network %q has uncut trailing layers", name))
	}
	n := cost.Network{Name: name, Blocks: b.blocks}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	for _, u := range b.units {
		if err := u.Validate(); err != nil {
			panic(err)
		}
	}
	return Model{Net: n, Units: b.units}
}
