package model

import (
	"fmt"
)

// vgg16Stages is configuration D of Simonyan & Zisserman (ICLR 2015):
// channel counts per stage, two or three 3×3 convolutions each, with a
// 2×2 max pool closing every stage.
var vgg16Stages = [][]int{
	{64, 64},
	{128, 128},
	{256, 256, 256},
	{512, 512, 512},
	{512, 512, 512},
}

// VGG16 builds the teacher for the model-compression workload, split into
// six distillation blocks: one per convolutional stage plus the
// classifier head.
//
// imagenet selects 224×224 geometry with the original 4096-4096-1000
// classifier (138.36 M parameters, 30.98 GFLOPs in Table II); otherwise
// the standard CIFAR adaptation is built — same convolutional trunk on
// 32×32 with a single 512→classes linear head (14.72 M parameters,
// 0.63 GFLOPs).
func VGG16(imagenet bool, classes int) Model {
	res := 32
	variant := "cifar"
	if imagenet {
		res = 224
		variant = "imagenet"
	}
	b := newBuilder(3, res, res)
	for si, stage := range vgg16Stages {
		for li, c := range stage {
			name := fmt.Sprintf("conv%d_%d", si+1, li+1)
			b.conv(name, c, 3, 1, 1, true)
			b.act(name + ".relu")
			if li == len(stage)-1 {
				b.pool(fmt.Sprintf("pool%d", si+1), 2)
			}
			b.endUnit(name)
		}
		b.cut(fmt.Sprintf("block%d", si))
	}
	b.flatten("flatten")
	if imagenet {
		b.linear("fc1", 4096)
		b.act("fc1.relu")
		b.linear("fc2", 4096)
		b.act("fc2.relu")
		b.linear("fc3", classes)
	} else {
		b.linear("fc", classes)
	}
	b.endUnit("head")
	b.cut("block5")
	return b.model("vgg16-" + variant)
}

// dsConvReplaceCIFAR and dsConvReplaceImageNet list the VGG-16
// convolutions replaced by depthwise-separable pairs in the student.
// The paper follows Blakeney et al. [7], who replace a *subset* of layers
// (full replacement would shrink the model far below Table II's reported
// sizes). These subsets are chosen so the derived student parameter and
// FLOP counts land near Table II: 7.25 M / 0.39 B for CIFAR-10 and
// 138.09 M / 26.15 B for ImageNet.
var dsConvReplaceCIFAR = map[string]bool{
	"conv3_2": true, "conv3_3": true,
	"conv5_1": true, "conv5_2": true, "conv5_3": true,
}

var dsConvReplaceImageNet = map[string]bool{
	"conv1_2": true, "conv2_1": true,
}

// DSConvStudent builds the compression student: VGG-16 with the selected
// convolutions replaced by a depthwise 3×3 + pointwise 1×1 pair of the
// same stride and channel widths (Howard et al., MobileNets).
func DSConvStudent(imagenet bool, classes int) Model {
	res := 32
	replace := dsConvReplaceCIFAR
	variant := "cifar"
	if imagenet {
		res = 224
		replace = dsConvReplaceImageNet
		variant = "imagenet"
	}
	b := newBuilder(3, res, res)
	for si, stage := range vgg16Stages {
		for li, c := range stage {
			name := fmt.Sprintf("conv%d_%d", si+1, li+1)
			if replace[name] {
				b.dwconv(name+".dw", 3, 1, 1)
				b.conv(name+".pw", c, 1, 1, 0, true)
			} else {
				b.conv(name, c, 3, 1, 1, true)
			}
			b.act(name + ".relu")
			if li == len(stage)-1 {
				b.pool(fmt.Sprintf("pool%d", si+1), 2)
			}
			b.endUnit(name)
		}
		b.cut(fmt.Sprintf("block%d", si))
	}
	b.flatten("flatten")
	if imagenet {
		b.linear("fc1", 4096)
		b.act("fc1.relu")
		b.linear("fc2", 4096)
		b.act("fc2.relu")
		b.linear("fc3", classes)
	} else {
		b.linear("fc", classes)
	}
	b.endUnit("head")
	b.cut("block5")
	return b.model("dsconv-student-" + variant)
}
