package model

import (
	"fmt"

	"pipebd/internal/dataset"
)

// TransformerGeom sizes one side of the transformer distillation
// workload: a pre-LN-free encoder stack (attention and MLP residuals,
// each closed by a LayerNorm) over embedded token sequences, split one
// encoder layer per distillation block — the DistilBERT-style blockwise
// setup the numeric workbench (distill.NewTransformerWorkbench) runs at
// miniature scale. Teacher and student share Dim, Heads, SeqLen, and
// Blocks so block-boundary activations align; the student differs only
// in its MLP hidden width FF.
type TransformerGeom struct {
	Blocks  int
	Dim     int // hidden width at every block boundary
	Heads   int // attention heads (must divide Dim)
	FF      int // MLP hidden width
	SeqLen  int
	Vocab   int
	Classes int // classifier width of the final block (0: no classifier)
}

// TransformerEncoder builds a block-splittable encoder-stack model from
// the geometry: block 0 embeds and runs one encoder layer, every further
// block is one encoder layer, and the final block ends in a mean-pool +
// linear classifier head when g.Classes > 0. Each encoder layer's
// attention and MLP halves are separate layerwise units (the LS
// baseline's packing granularity).
func TransformerEncoder(name string, g TransformerGeom) Model {
	if g.Blocks <= 0 || g.Dim <= 0 || g.SeqLen <= 0 || g.Vocab <= 0 || g.FF <= 0 {
		panic(fmt.Sprintf("model: invalid transformer geometry %+v", g))
	}
	if g.Heads <= 0 || g.Dim%g.Heads != 0 {
		panic(fmt.Sprintf("model: transformer heads %d must divide dim %d", g.Heads, g.Dim))
	}
	b := newBuilder(1, g.SeqLen, 1)
	for blk := 0; blk < g.Blocks; blk++ {
		if blk == 0 {
			b.embed("embed", g.Vocab, g.Dim)
			b.endUnit("embed")
		}
		prefix := fmt.Sprintf("enc%d", blk)
		b.attn(prefix+".attn", g.Heads)
		b.residualAdd(prefix + ".attn.add")
		b.lnorm(prefix + ".attn.ln")
		b.endUnit(prefix + ".attn")
		b.plinear(prefix+".mlp.fc1", g.FF)
		b.act(prefix + ".mlp.gelu")
		b.plinear(prefix+".mlp.fc2", g.Dim)
		b.residualAdd(prefix + ".mlp.add")
		b.lnorm(prefix + ".mlp.ln")
		b.endUnit(prefix + ".mlp")
		if g.Classes > 0 && blk == g.Blocks-1 {
			b.gap("pool")
			b.flatten("flatten")
			b.linear("fc", g.Classes)
			b.endUnit("head")
		}
		b.cut(fmt.Sprintf("block%d", blk))
	}
	return b.model(name)
}

// TransformerDistill returns the transformer blockwise-distillation
// workload: a six-block encoder teacher distilling into a student of the
// same depth and hidden width but a 4x narrower MLP, on synthetic token
// sequences. Like the NAS workload, distillation losses are defined per
// encoder block, so the LS baseline packs whole blocks.
func TransformerDistill() Workload {
	teacher := TransformerGeom{
		Blocks: 6, Dim: 256, Heads: 4, FF: 1024,
		SeqLen: 64, Vocab: 8192, Classes: 10,
	}
	student := teacher
	student.FF = teacher.FF / 4
	w := Workload{
		Name:                 "transformer-tokens",
		Teacher:              TransformerEncoder("transformer-teacher", teacher),
		Student:              TransformerEncoder("transformer-student", student),
		Data:                 dataset.TokensSynthetic(100000, teacher.SeqLen),
		LSAtBlockGranularity: true,
	}
	if err := w.Validate(); err != nil {
		panic(err)
	}
	return w
}
