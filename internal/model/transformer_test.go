package model

import (
	"testing"

	"pipebd/internal/cost"
)

// Closed-form parameter and MAC counts for the transformer geometry,
// verifying the cost-model mapping (Embed/Attn/LayerNorm kinds, spatial
// position-wise Linear) against hand-derived formulas.

func transformerLayerParams(dim, ff int) int64 {
	attn := 4 * (int64(dim)*int64(dim) + int64(dim))
	ln := 2 * 2 * int64(dim)
	mlp := int64(dim)*int64(ff) + int64(ff) + int64(ff)*int64(dim) + int64(dim)
	return attn + ln + mlp
}

func TestTransformerEncoderParamCounts(t *testing.T) {
	g := TransformerGeom{Blocks: 6, Dim: 256, Heads: 4, FF: 1024,
		SeqLen: 64, Vocab: 8192, Classes: 10}
	m := TransformerEncoder("t", g)

	embed := int64(g.Vocab+g.SeqLen) * int64(g.Dim)
	head := int64(g.Dim)*int64(g.Classes) + int64(g.Classes)
	want := embed + int64(g.Blocks)*transformerLayerParams(g.Dim, g.FF) + head
	if got := m.Net.ParamCount(); got != want {
		t.Errorf("teacher params = %d, want %d", got, want)
	}

	// Per-sample MACs: attention 4·D²·L + 2·L²·D, MLP 2·D·FF·L per
	// layer, plus the classifier head after pooling.
	d, l, ff := float64(g.Dim), float64(g.SeqLen), float64(g.FF)
	layer := 4*d*d*l + 2*l*l*d + 2*d*ff*l
	wantMACs := float64(g.Blocks)*layer + d*float64(g.Classes)
	if got := m.Net.MACs(); got != wantMACs {
		t.Errorf("teacher MACs = %v, want %v", got, wantMACs)
	}
}

func TestTransformerDistillWorkload(t *testing.T) {
	w := TransformerDistill()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumBlocks() != 6 {
		t.Errorf("blocks = %d, want 6", w.NumBlocks())
	}
	// Student keeps dim/heads/depth but runs a 4x narrower MLP, so it
	// must be strictly smaller while block boundaries stay aligned.
	tp, sp := w.Teacher.Net.ParamCount(), w.Student.Net.ParamCount()
	if sp >= tp {
		t.Errorf("student params %d not smaller than teacher %d", sp, tp)
	}
	for i := range w.Teacher.Net.Blocks {
		to := w.Teacher.Net.Blocks[i].OutBytes(1)
		so := w.Student.Net.Blocks[i].OutBytes(1)
		if to != so {
			t.Errorf("block %d boundary: teacher %dB, student %dB", i, to, so)
		}
	}
	// Token ids enter as [1, L] float32: 4·L bytes per sample.
	if got := w.Teacher.Net.Blocks[0].InBytes(1); got != 4*64 {
		t.Errorf("block 0 input = %dB, want %d", got, 4*64)
	}
}

// TestLinearSpatialAware pins the position-wise Linear semantics: at
// InH=InW=1 (every conv model) nothing changes, and at InH=L the layer
// costs L times the 1-position layer and preserves geometry.
func TestLinearSpatialAware(t *testing.T) {
	one := cost.Layer{Kind: cost.Linear, InC: 8, OutC: 16, InH: 1, InW: 1, Bias: true}
	seq := cost.Layer{Kind: cost.Linear, InC: 8, OutC: 16, InH: 5, InW: 1, Bias: true}
	if one.MACs() != 8*16 {
		t.Errorf("1-position Linear MACs = %v, want %v", one.MACs(), 8*16)
	}
	if seq.MACs() != 5*8*16 {
		t.Errorf("5-position Linear MACs = %v, want %v", seq.MACs(), 5*8*16)
	}
	if seq.OutH() != 5 || seq.OutW() != 1 {
		t.Errorf("5-position Linear out = [%d,%d], want [5,1]", seq.OutH(), seq.OutW())
	}
	if one.OutBytes(2) != 4*2*16 {
		t.Errorf("1-position Linear OutBytes = %d, want %d", one.OutBytes(2), 4*2*16)
	}
	if seq.OutBytes(2) != 4*2*16*5 {
		t.Errorf("5-position Linear OutBytes = %d, want %d", seq.OutBytes(2), 4*2*16*5)
	}
	// Params are shared across positions: identical for both.
	if one.ParamCount() != seq.ParamCount() {
		t.Errorf("params differ: %d vs %d", one.ParamCount(), seq.ParamCount())
	}
}
