package model

import (
	"math"
	"testing"

	"pipebd/internal/cost"
)

// within asserts x is within frac of target.
func within(t *testing.T, what string, x, target, frac float64) {
	t.Helper()
	if math.Abs(x-target)/target > frac {
		t.Errorf("%s = %v, want within %.0f%% of %v", what, x, frac*100, target)
	}
}

// Table II fidelity checks. MobileNetV2 and VGG-16 are fully determined
// architectures, so tight tolerances apply; the student networks are our
// instantiations of under-specified architectures, so looser ones do.

func TestMobileNetV2MatchesTableII(t *testing.T) {
	cifar := MobileNetV2(false, 10)
	within(t, "MNv2-CIFAR params", float64(cifar.Net.ParamCount()), 2.24e6, 0.01)
	within(t, "MNv2-CIFAR MACs", cifar.Net.MACs(), 87.98e6, 0.01)

	imnet := MobileNetV2(true, 1000)
	within(t, "MNv2-ImageNet params", float64(imnet.Net.ParamCount()), 3.50e6, 0.01)
	within(t, "MNv2-ImageNet MACs", imnet.Net.MACs(), 300.77e6, 0.01)
}

func TestVGG16MatchesTableII(t *testing.T) {
	cifar := VGG16(false, 10)
	within(t, "VGG16-CIFAR params", float64(cifar.Net.ParamCount()), 14.72e6, 0.01)
	within(t, "VGG16-CIFAR FLOPs", cifar.Net.FLOPs(), 0.63e9, 0.02)

	imnet := VGG16(true, 1000)
	within(t, "VGG16-ImageNet params", float64(imnet.Net.ParamCount()), 138.36e6, 0.01)
	within(t, "VGG16-ImageNet FLOPs", imnet.Net.FLOPs(), 30.98e9, 0.02)
}

func TestProxylessFoundNearTableII(t *testing.T) {
	cifar := ProxylessNASFound(false, 10)
	within(t, "Proxyless-CIFAR params", float64(cifar.Net.ParamCount()), 1.40e6, 0.05)
	within(t, "Proxyless-CIFAR MACs", cifar.Net.MACs(), 76.10e6, 0.05)

	// The ImageNet found network is under-specified by the paper; our
	// skeleton saturates ~10% below Table II (see proxyless.go).
	imnet := ProxylessNASFound(true, 1000)
	within(t, "Proxyless-ImageNet params", float64(imnet.Net.ParamCount()), 4.22e6, 0.15)
	within(t, "Proxyless-ImageNet MACs", imnet.Net.MACs(), 420.20e6, 0.15)
}

func TestDSConvStudentNearTableII(t *testing.T) {
	cifar := DSConvStudent(false, 10)
	within(t, "DSConv-CIFAR params", float64(cifar.Net.ParamCount()), 7.25e6, 0.05)
	within(t, "DSConv-CIFAR FLOPs", cifar.Net.FLOPs(), 0.39e9, 0.15)

	imnet := DSConvStudent(true, 1000)
	within(t, "DSConv-ImageNet params", float64(imnet.Net.ParamCount()), 138.09e6, 0.01)
	within(t, "DSConv-ImageNet FLOPs", imnet.Net.FLOPs(), 26.15e9, 0.02)
}

func TestStudentTeacherSizeRelations(t *testing.T) {
	// Compression students and the CIFAR NAS student are smaller than
	// their teachers; the ImageNet NAS student is *larger* (Table II:
	// 420.2 M vs 300.77 M MACs) — the paper's point that small teachers
	// can train larger students.
	if s, te := ProxylessNASFound(false, 10).Net, MobileNetV2(false, 10).Net; s.MACs() >= te.MACs() {
		t.Errorf("nas-cifar10: student MACs %v >= teacher %v", s.MACs(), te.MACs())
	}
	if s, te := ProxylessNASFound(true, 1000).Net, MobileNetV2(true, 1000).Net; s.MACs() <= te.MACs() {
		t.Errorf("nas-imagenet: student MACs %v should exceed teacher %v (Table II)", s.MACs(), te.MACs())
	}
	for _, imagenet := range []bool{false, true} {
		classes := 10
		if imagenet {
			classes = 1000
		}
		s, te := DSConvStudent(imagenet, classes).Net, VGG16(imagenet, classes).Net
		if s.MACs() >= te.MACs() {
			t.Errorf("compression imagenet=%v: student MACs %v >= teacher %v", imagenet, s.MACs(), te.MACs())
		}
	}
}

func TestSixBlocksEverywhere(t *testing.T) {
	for _, w := range AllWorkloads() {
		if got := w.NumBlocks(); got != 6 {
			t.Errorf("%s: %d blocks, want 6", w.Name, got)
		}
	}
}

func TestUnitCounts(t *testing.T) {
	// MobileNet-skeleton models: stem + 17 mobile layers + head = 19.
	for _, m := range []Model{
		MobileNetV2(false, 10), MobileNetV2(true, 1000),
		ProxylessNASSupernet(false, 10), ProxylessNASFound(true, 1000),
	} {
		if got := len(m.Units); got != 19 {
			t.Errorf("%s: %d units, want 19", m.Net.Name, got)
		}
	}
	// VGG-16 family: 13 convolution units + head = 14.
	for _, m := range []Model{VGG16(false, 10), DSConvStudent(true, 1000)} {
		if got := len(m.Units); got != 14 {
			t.Errorf("%s: %d units, want 14", m.Net.Name, got)
		}
	}
}

func TestUnitsPartitionBlocks(t *testing.T) {
	// The flattened unit layers must equal the flattened block layers in
	// order (units are a refinement of blocks).
	for _, w := range AllWorkloads() {
		for _, m := range []Model{w.Teacher, w.Student} {
			var fromUnits, fromBlocks []string
			for _, u := range m.Units {
				for _, l := range u.Layers {
					fromUnits = append(fromUnits, l.Name)
				}
			}
			for _, b := range m.Net.Blocks {
				for _, l := range b.Layers {
					fromBlocks = append(fromBlocks, l.Name)
				}
			}
			if len(fromUnits) != len(fromBlocks) {
				t.Fatalf("%s: units cover %d layers, blocks %d", m.Net.Name, len(fromUnits), len(fromBlocks))
			}
			for i := range fromUnits {
				if fromUnits[i] != fromBlocks[i] {
					t.Fatalf("%s: layer order diverges at %d: %s vs %s", m.Net.Name, i, fromUnits[i], fromBlocks[i])
				}
			}
		}
	}
}

func TestWorkloadsValidate(t *testing.T) {
	for _, w := range AllWorkloads() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestImageNetBlock0DominatesTeacherActivations(t *testing.T) {
	// The paper's Fig. 5/7 narrative: ImageNet's first block carries by
	// far the largest feature maps. Its max activation must dominate
	// every later block's.
	m := MobileNetV2(true, 1000)
	first := m.Net.Blocks[0].MaxActBytes(256)
	for i, b := range m.Net.Blocks[1:] {
		if b.MaxActBytes(256) >= first {
			t.Errorf("block %d max activation %d >= block 0's %d", i+1, b.MaxActBytes(256), first)
		}
	}
}

func TestSupernetHoldsAllCandidateParams(t *testing.T) {
	// The supernet carries every candidate's weights, so it must be much
	// larger than the teacher, while its expected per-step compute stays
	// comparable (candidates are sampled, ComputeScale=1/6).
	sup := ProxylessNASSupernet(false, 10)
	teacher := MobileNetV2(false, 10)
	if sup.Net.ParamCount() < 3*teacher.Net.ParamCount() {
		t.Errorf("supernet params %d should far exceed teacher %d", sup.Net.ParamCount(), teacher.Net.ParamCount())
	}
}

func TestProxylessSupernetAlignsWithTeacherBlocks(t *testing.T) {
	for _, imagenet := range []bool{false, true} {
		classes := 10
		if imagenet {
			classes = 1000
		}
		teacher := MobileNetV2(imagenet, classes)
		student := ProxylessNASSupernet(imagenet, classes)
		for i := range teacher.Net.Blocks {
			tb, sb := teacher.Net.Blocks[i], student.Net.Blocks[i]
			if tb.InBytes(1) != sb.InBytes(1) {
				t.Errorf("imagenet=%v block %d input mismatch: teacher %d student %d",
					imagenet, i, tb.InBytes(1), sb.InBytes(1))
			}
			if tb.OutBytes(1) != sb.OutBytes(1) {
				t.Errorf("imagenet=%v block %d output mismatch: teacher %d student %d",
					imagenet, i, tb.OutBytes(1), sb.OutBytes(1))
			}
		}
	}
}

func TestResNet50MatchesPublishedNumbers(t *testing.T) {
	imnet := ResNet50(true, 1000)
	// Published: 25.56 M parameters, ~4.1 GMACs at 224x224.
	within(t, "ResNet50-ImageNet params", float64(imnet.Net.ParamCount()), 25.56e6, 0.02)
	within(t, "ResNet50-ImageNet MACs", imnet.Net.MACs(), 4.1e9, 0.05)
	if got := imnet.Net.NumBlocks(); got != 6 {
		t.Fatalf("ResNet50 blocks = %d, want 6", got)
	}
	// stem + 16 bottlenecks + head = 18 units.
	if got := len(imnet.Units); got != 18 {
		t.Fatalf("ResNet50 units = %d, want 18", got)
	}
	cifar := ResNet50(false, 10)
	if cifar.Net.ParamCount() >= imnet.Net.ParamCount() {
		t.Fatal("CIFAR variant should have fewer params (smaller classifier)")
	}
}

func TestResNet50ProjectionBranches(t *testing.T) {
	// Stage transitions must carry projection shortcuts (BranchStart
	// markers in the cost layers).
	m := ResNet50(true, 1000)
	var branches int
	for _, l := range m.Net.AllLayers() {
		if l.BranchStart {
			branches++
		}
	}
	// 4 stage-entry bottlenecks x 2 branch heads each.
	if branches != 8 {
		t.Fatalf("got %d branch heads, want 8", branches)
	}
}

func TestEfficientNetB0NearPublishedNumbers(t *testing.T) {
	imnet := EfficientNetB0(true, 1000)
	// Published: 5.29 M parameters, ~390 MMACs at 224x224. Our SE and
	// stem/head instantiation differs in minor details (no swish-specific
	// cost, integer squeeze widths), so a modest tolerance applies.
	within(t, "EffNetB0-ImageNet params", float64(imnet.Net.ParamCount()), 5.29e6, 0.10)
	within(t, "EffNetB0-ImageNet MACs", imnet.Net.MACs(), 390e6, 0.10)
	if imnet.Net.NumBlocks() != 6 {
		t.Fatalf("EffNetB0 blocks = %d, want 6", imnet.Net.NumBlocks())
	}
	// stem + 16 MBConv layers + head = 18 units.
	if got := len(imnet.Units); got != 18 {
		t.Fatalf("EffNetB0 units = %d, want 18", got)
	}
}

func TestEfficientNetB0HasSELayers(t *testing.T) {
	m := EfficientNetB0(true, 1000)
	var se int
	for _, l := range m.Net.AllLayers() {
		if l.Kind == cost.SE {
			se++
		}
	}
	if se != 16 {
		t.Fatalf("got %d SE layers, want 16 (one per MBConv)", se)
	}
}
