package model

import (
	"fmt"
)

// The NAS student follows ProxylessNAS (Cai et al., ICLR 2019): the same
// inverted-residual macro-skeleton as MobileNetV2, but each mobile layer
// chooses among candidate operations — kernel size {3,5,7} × expansion
// ratio {3,6} (Table I of the paper). During the search the student is a
// supernet holding every candidate's weights; following DNA [9], each
// training step samples one candidate path per layer ("the probability of
// selecting the operation every step"), so the expected per-step compute
// is the candidate mean (ComputeScale = 1/6 per branch) while parameters
// cover every candidate.

// proxylessKernels and proxylessExpansions are the paper's search space.
var (
	proxylessKernels    = []int{3, 5, 7}
	proxylessExpansions = []int{3, 6}
)

// proxylessCandidate appends one candidate MBConv (kernel k, expansion e).
func proxylessCandidate(b *builder, name string, k, e, outC, stride int) {
	inC := b.c
	hidden := inC * e
	b.conv(name+".pw", hidden, 1, 1, 0, false)
	b.bn(name + ".pw.bn")
	b.act(name + ".pw.relu6")
	b.dwconv(fmt.Sprintf("%s.dw%d", name, k), k, stride, k/2)
	b.bn(name + ".dw.bn")
	b.act(name + ".dw.relu6")
	b.conv(name+".pwl", outC, 1, 1, 0, false)
	b.bn(name + ".pwl.bn")
	_ = inC
}

// mixedLayer appends a full candidate set for one searchable layer.
func mixedLayer(b *builder, name string, outC, stride int) {
	inC := b.c
	b.parallel(len(proxylessKernels)*len(proxylessExpansions), true, func(i int) {
		k := proxylessKernels[i%len(proxylessKernels)]
		e := proxylessExpansions[i/len(proxylessKernels)]
		proxylessCandidate(b, fmt.Sprintf("%s.k%de%d", name, k, e), k, e, outC, stride)
	})
	if stride == 1 && inC == outC {
		b.residualAdd(name + ".add")
	}
}

// ProxylessNASSupernet builds the student supernet for the NAS workload,
// aligned with the teacher's six-block split: the student block boundaries
// produce the same channel counts and spatial sizes as MobileNetV2's, so
// teacher activations can feed student blocks directly (the DNA setup).
func ProxylessNASSupernet(imagenet bool, classes int) Model {
	res := 32
	stemStride := 1
	strides := mobileNetV2CIFARStrides
	variant := "cifar"
	if imagenet {
		res = 224
		stemStride = 2
		strides = []int{1, 2, 2, 2, 1, 2, 1}
		variant = "imagenet"
	}

	b := newBuilder(3, res, res)
	b.conv("stem.conv", 32, 3, stemStride, 1, false)
	b.bn("stem.bn")
	b.act("stem.relu6")
	b.endUnit("stem")

	for si, st := range mobileNetV2Stages {
		stride := strides[si]
		for li := 0; li < st.n; li++ {
			s := 1
			if li == 0 {
				s = stride
			}
			name := fmt.Sprintf("s%d.l%d", si+1, li)
			if si == 0 {
				// Stage 1 (t=1) is fixed in ProxylessNAS, not searched.
				invertedResidual(b, name, st.t, st.c, s)
			} else {
				mixedLayer(b, name, st.c, s)
			}
			b.endUnit(name)
		}
		switch si {
		case 1:
			b.cut("block0")
		case 2:
			b.cut("block1")
		case 3:
			b.cut("block2")
		case 4:
			b.cut("block3")
		case 5:
			b.cut("block4")
		}
	}

	b.conv("head.conv", 1280, 1, 1, 0, false)
	b.bn("head.bn")
	b.act("head.relu6")
	b.gap("head.gap")
	b.flatten("head.flatten")
	b.linear("classifier", classes)
	b.endUnit("head")
	b.cut("block5")

	return b.model("proxylessnas-supernet-" + variant)
}

// proxylessFoundChoice is the (kernel, expansion) pick for one stage of
// the found architecture. The paper does not publish its found networks;
// these per-stage choices are selected so that the derived parameter and
// MAC counts land near Table II's 1.40 M / 76.10 M (CIFAR-10) and
// 4.22 M / 420.20 M (ImageNet) — see model_test.go for the tolerances.
type proxylessFoundChoice struct{ k, e int }

var proxylessFoundCIFAR = []proxylessFoundChoice{
	{0, 0}, // stage 1 fixed
	{7, 6}, // stage 2
	{7, 6}, // stage 3
	{3, 3}, // stage 4
	{3, 3}, // stage 5
	{3, 3}, // stage 6
	{5, 3}, // stage 7
}

// The ImageNet pattern saturates at the search space's largest choices:
// the published ProxylessNAS ImageNet networks carry more layers than the
// MobileNetV2 skeleton used here, so our derived counts land ~10% below
// Table II (3.79 M / 376.8 M vs 4.22 M / 420.2 M) — the closest this
// skeleton admits.
var proxylessFoundImageNet = []proxylessFoundChoice{
	{0, 0}, // stage 1 fixed
	{7, 6},
	{7, 6},
	{7, 6},
	{7, 6},
	{7, 6},
	{7, 6},
}

// ProxylessNASFound builds a found (post-search) student architecture,
// used for Table II's parameter/MAC columns.
func ProxylessNASFound(imagenet bool, classes int) Model {
	res := 32
	stemStride := 1
	strides := mobileNetV2CIFARStrides
	choices := proxylessFoundCIFAR
	variant := "cifar"
	if imagenet {
		res = 224
		stemStride = 2
		strides = []int{1, 2, 2, 2, 1, 2, 1}
		choices = proxylessFoundImageNet
		variant = "imagenet"
	}

	b := newBuilder(3, res, res)
	b.conv("stem.conv", 32, 3, stemStride, 1, false)
	b.bn("stem.bn")
	b.act("stem.relu6")
	b.endUnit("stem")

	for si, st := range mobileNetV2Stages {
		stride := strides[si]
		for li := 0; li < st.n; li++ {
			s := 1
			if li == 0 {
				s = stride
			}
			name := fmt.Sprintf("s%d.l%d", si+1, li)
			if si == 0 {
				invertedResidual(b, name, st.t, st.c, s)
				b.endUnit(name)
				continue
			}
			inC := b.c
			ch := choices[si]
			proxylessCandidate(b, fmt.Sprintf("%s.k%de%d", name, ch.k, ch.e), ch.k, ch.e, st.c, s)
			if s == 1 && inC == st.c {
				b.residualAdd(name + ".add")
			}
			b.endUnit(name)
		}
		switch si {
		case 1:
			b.cut("block0")
		case 2:
			b.cut("block1")
		case 3:
			b.cut("block2")
		case 4:
			b.cut("block3")
		case 5:
			b.cut("block4")
		}
	}

	b.conv("head.conv", 1280, 1, 1, 0, false)
	b.bn("head.bn")
	b.act("head.relu6")
	b.gap("head.gap")
	b.flatten("head.flatten")
	b.linear("classifier", classes)
	b.endUnit("head")
	b.cut("block5")

	return b.model("proxylessnas-found-" + variant)
}
