package model

import "fmt"

// ResNet-50 (He et al., CVPR 2016) — the architecture the paper cites
// when discussing typical block counts ("B is around ten [3, 19]"). It is
// provided as a zoo entry for custom workloads: its six-block split
// (stem, four bottleneck stages, head) plugs into the same scheduling
// machinery as the Table II models.

// resNet50Stages: bottleneck width, output channels, repeats, stride.
var resNet50Stages = []struct {
	width, out, n, stride int
}{
	{64, 256, 3, 1},
	{128, 512, 4, 2},
	{256, 1024, 6, 2},
	{512, 2048, 3, 2},
}

// bottleneck appends one ResNet bottleneck unit. When the input geometry
// changes (stride or channel growth), a projection shortcut runs in
// parallel with the main path; otherwise the skip is the identity.
func bottleneck(b *builder, name string, width, outC, stride int) {
	inC := b.c
	project := stride != 1 || inC != outC
	if project {
		b.parallel(2, false, func(i int) {
			if i == 0 {
				bottleneckMain(b, name, width, outC, stride)
			} else {
				b.conv(name+".proj", outC, 1, stride, 0, false)
				b.bn(name + ".proj.bn")
			}
		})
	} else {
		bottleneckMain(b, name, width, outC, stride)
	}
	b.residualAdd(name + ".add")
	b.act(name + ".relu")
}

func bottleneckMain(b *builder, name string, width, outC, stride int) {
	b.conv(name+".c1", width, 1, 1, 0, false)
	b.bn(name + ".c1.bn")
	b.act(name + ".c1.relu")
	b.conv(name+".c2", width, 3, stride, 1, false)
	b.bn(name + ".c2.bn")
	b.act(name + ".c2.relu")
	b.conv(name+".c3", outC, 1, 1, 0, false)
	b.bn(name + ".c3.bn")
}

// ResNet50 builds the 25.6M-parameter ResNet-50 split into six
// distillation blocks: stem, the four bottleneck stages, and the
// classifier head. imagenet selects 224×224 geometry (4.1 GMACs);
// otherwise the 32×32 CIFAR adaptation (3×3 stem, no max pool) is built.
func ResNet50(imagenet bool, classes int) Model {
	res := 32
	variant := "cifar"
	if imagenet {
		res = 224
		variant = "imagenet"
	}
	b := newBuilder(3, res, res)
	if imagenet {
		b.conv("stem.conv", 64, 7, 2, 3, false)
		b.bn("stem.bn")
		b.act("stem.relu")
		b.pool("stem.pool", 2)
	} else {
		b.conv("stem.conv", 64, 3, 1, 1, false)
		b.bn("stem.bn")
		b.act("stem.relu")
	}
	b.endUnit("stem")
	b.cut("block0")

	for si, st := range resNet50Stages {
		for li := 0; li < st.n; li++ {
			stride := 1
			if li == 0 {
				stride = st.stride
			}
			name := fmt.Sprintf("s%d.b%d", si+1, li)
			bottleneck(b, name, st.width, st.out, stride)
			b.endUnit(name)
		}
		b.cut(fmt.Sprintf("block%d", si+1))
	}

	b.gap("head.gap")
	b.flatten("head.flatten")
	b.linear("fc", classes)
	b.endUnit("head")
	b.cut("block5")
	return b.model("resnet50-" + variant)
}
