// Package metrics defines the result types produced by the pipeline
// executors: per-rank time breakdowns (the paper's Fig. 2), per-rank peak
// memory (Fig. 7), epoch times (Table II), and speedup helpers (Figs. 4-6).
package metrics

import (
	"fmt"
	"strings"

	"pipebd/internal/sim"
)

// RankStats aggregates one device's epoch activity.
type RankStats struct {
	// Busy holds busy seconds by category. Waiting for data or relayed
	// activations is accounted as CatLoad / CatComm pseudo-busy time so
	// that Busy + Idle always spans the epoch.
	Busy [sim.NumCategories]float64
	// Idle is unattributed waiting (barriers, pipeline bubbles).
	Idle float64
	// PeakMemBytes is the estimated peak device memory.
	PeakMemBytes int64
}

// TotalBusy returns the rank's busy time over all categories.
func (r RankStats) TotalBusy() float64 {
	var s float64
	for _, b := range r.Busy {
		s += b
	}
	return s
}

// Report is the outcome of simulating one training epoch under a schedule.
type Report struct {
	Strategy    string
	Workload    string
	System      string
	GlobalBatch int
	Steps       int
	// EpochTime is the simulated wall-clock for one epoch.
	EpochTime float64
	Ranks     []RankStats
	// ScheduleDesc is a human-readable schedule summary, e.g.
	// "dev0-2: B0-B2 (3-way DP) | dev3: B3-B5".
	ScheduleDesc string
}

// FigTwoBreakdown collapses the per-rank accounting into the four bars of
// the paper's Fig. 2, averaged across ranks: data loading, teacher
// execution, student execution (forward+backward+update+gradient
// sharing), and idle (including exposed relay waits).
func (r Report) FigTwoBreakdown() (load, teacher, student, idle float64) {
	n := float64(len(r.Ranks))
	for _, rank := range r.Ranks {
		load += rank.Busy[sim.CatLoad]
		teacher += rank.Busy[sim.CatTeacherFwd]
		student += rank.Busy[sim.CatStudentFwd] + rank.Busy[sim.CatStudentBwd] +
			rank.Busy[sim.CatUpdate] + rank.Busy[sim.CatAllReduce]
		idle += rank.Idle + rank.Busy[sim.CatComm]
	}
	return load / n, teacher / n, student / n, idle / n
}

// PeakMemory returns the maximum peak memory over all ranks.
func (r Report) PeakMemory() int64 {
	var m int64
	for _, rank := range r.Ranks {
		if rank.PeakMemBytes > m {
			m = rank.PeakMemBytes
		}
	}
	return m
}

// Speedup returns base.EpochTime / r.EpochTime: how much faster r is than
// the baseline.
func (r Report) Speedup(base Report) float64 {
	if r.EpochTime <= 0 {
		return 0
	}
	return base.EpochTime / r.EpochTime
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s/%s batch=%d steps=%d epoch=%.3fs",
		r.Strategy, r.Workload, r.GlobalBatch, r.Steps, r.EpochTime)
}

// FormatSeconds renders a duration the way the paper's Table II does:
// "31.52s." under a minute, "62m 21s." above.
func FormatSeconds(s float64) string {
	if s < 60 {
		return fmt.Sprintf("%.2fs.", s)
	}
	m := int(s) / 60
	sec := s - float64(m*60)
	return fmt.Sprintf("%dm %02.0fs.", m, sec)
}

// Table renders rows of label/value pairs with aligned columns — shared
// by the experiment drivers' text output.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
