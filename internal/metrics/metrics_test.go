package metrics

import (
	"math"
	"strings"
	"testing"

	"pipebd/internal/sim"
)

func sampleReport() Report {
	var busy0, busy1 [sim.NumCategories]float64
	busy0[sim.CatLoad] = 1
	busy0[sim.CatTeacherFwd] = 2
	busy0[sim.CatStudentFwd] = 3
	busy0[sim.CatStudentBwd] = 4
	busy0[sim.CatUpdate] = 0.5
	busy1[sim.CatComm] = 1.5
	busy1[sim.CatAllReduce] = 0.5
	return Report{
		Strategy:    "TR",
		Workload:    "nas-cifar10",
		GlobalBatch: 256,
		Steps:       10,
		EpochTime:   12,
		Ranks: []RankStats{
			{Busy: busy0, Idle: 1.5, PeakMemBytes: 100},
			{Busy: busy1, Idle: 10, PeakMemBytes: 300},
		},
	}
}

func TestRankTotalBusy(t *testing.T) {
	r := sampleReport()
	if got := r.Ranks[0].TotalBusy(); math.Abs(got-10.5) > 1e-12 {
		t.Fatalf("TotalBusy = %v, want 10.5", got)
	}
}

func TestFigTwoBreakdown(t *testing.T) {
	r := sampleReport()
	load, teacher, student, idle := r.FigTwoBreakdown()
	// Averages over 2 ranks.
	if math.Abs(load-0.5) > 1e-12 {
		t.Fatalf("load = %v, want 0.5", load)
	}
	if math.Abs(teacher-1) > 1e-12 {
		t.Fatalf("teacher = %v, want 1", teacher)
	}
	// student = (3+4+0.5 + 0.5)/2 = 4; comm counts as idle.
	if math.Abs(student-4) > 1e-12 {
		t.Fatalf("student = %v, want 4", student)
	}
	if math.Abs(idle-(1.5+10+1.5)/2) > 1e-12 {
		t.Fatalf("idle = %v", idle)
	}
	// The four components must span the epoch (per-rank averages).
	if math.Abs(load+teacher+student+idle-r.EpochTime) > 1e-9 {
		t.Fatalf("breakdown does not span epoch: %v", load+teacher+student+idle)
	}
}

func TestPeakMemory(t *testing.T) {
	if got := sampleReport().PeakMemory(); got != 300 {
		t.Fatalf("PeakMemory = %d, want 300", got)
	}
}

func TestSpeedup(t *testing.T) {
	base := Report{EpochTime: 30}
	fast := Report{EpochTime: 10}
	if got := fast.Speedup(base); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Speedup = %v, want 3", got)
	}
	var zero Report
	if zero.Speedup(base) != 0 {
		t.Fatal("zero epoch time must not divide")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{31.52, "31.52s."},
		{0.5, "0.50s."},
		{109, "1m 49s."},
		{3741, "62m 21s."},
		{3639, "60m 39s."},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport().String()
	for _, frag := range []string{"TR", "nas-cifar10", "batch=256"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String %q missing %q", s, frag)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	// All rows equal width for their first column.
	if !strings.HasPrefix(lines[3], "yyyy") || !strings.Contains(lines[0], "long-header") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}
