// Package sim provides the deterministic virtual-time simulator that the
// pipeline executors run on. Because every schedule simulated in this
// project is a static dataflow (task durations come from the analytic
// cost model and precedences from the schedule itself), simulation
// reduces to a resource-constrained forward sweep: each task starts at
// the maximum of its resource's free time and its dependencies' finish
// times. Tracks are serial resources (a GPU's compute queue, a per-device
// copy engine, the host's shared loader) that additionally record
// categorized busy intervals for breakdown reporting (the paper's Fig. 2)
// and Gantt rendering (Fig. 5b/5c).
package sim

import "fmt"

// Category classifies busy time on a track, matching the breakdown the
// paper reports in Fig. 2 plus the communication classes.
type Category int

// Track busy-time categories.
const (
	CatLoad       Category = iota // data loading (host loader)
	CatTeacherFwd                 // teacher block forward
	CatStudentFwd                 // student block forward
	CatStudentBwd                 // student block backward
	CatUpdate                     // optimizer step
	CatComm                       // activation relay transfer
	CatAllReduce                  // gradient all-reduce
	numCategories
)

// String returns the category's display name.
func (c Category) String() string {
	switch c {
	case CatLoad:
		return "load"
	case CatTeacherFwd:
		return "teacher_fwd"
	case CatStudentFwd:
		return "student_fwd"
	case CatStudentBwd:
		return "student_bwd"
	case CatUpdate:
		return "update"
	case CatComm:
		return "comm"
	case CatAllReduce:
		return "allreduce"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// NumCategories is the number of distinct categories.
const NumCategories = int(numCategories)

// Interval is one busy span on a track.
type Interval struct {
	Start, End float64
	Cat        Category
	Label      string // optional short label ("T0", "S2", ...) for Gantt rendering
}

// Track is a serial resource in virtual time.
type Track struct {
	Name      string
	freeAt    float64
	busy      [numCategories]float64
	intervals []Interval
	record    bool
}

// NewTrack returns an empty track. record enables interval retention for
// Gantt rendering; busy-time accounting is always on.
func NewTrack(name string, record bool) *Track {
	return &Track{Name: name, record: record}
}

// Exec schedules a task of duration dur that may not start before ready,
// serialized after all previously scheduled work on this track. It
// returns the task's start and end times. Zero-duration tasks advance
// nothing but still respect ordering.
func (t *Track) Exec(ready, dur float64, cat Category, label string) (start, end float64) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %v on track %s", dur, t.Name))
	}
	start = t.freeAt
	if ready > start {
		start = ready
	}
	end = start + dur
	t.freeAt = end
	t.busy[cat] += dur
	if t.record && dur > 0 {
		t.intervals = append(t.intervals, Interval{Start: start, End: end, Cat: cat, Label: label})
	}
	return start, end
}

// FreeAt returns the time at which the track becomes free.
func (t *Track) FreeAt() float64 { return t.freeAt }

// AdvanceTo moves the track's free time forward to at least tm (an
// explicit stall, e.g. a barrier). It never moves time backwards.
func (t *Track) AdvanceTo(tm float64) {
	if tm > t.freeAt {
		t.freeAt = tm
	}
}

// Busy returns the accumulated busy time in the given category.
func (t *Track) Busy(cat Category) float64 { return t.busy[cat] }

// TotalBusy returns the busy time summed over all categories.
func (t *Track) TotalBusy() float64 {
	var s float64
	for _, b := range t.busy {
		s += b
	}
	return s
}

// Intervals returns recorded intervals (empty unless recording enabled).
func (t *Track) Intervals() []Interval { return t.intervals }

// Max returns the larger of two times — a barrier helper.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MaxAll returns the maximum of the given times (0 for an empty list).
func MaxAll(times ...float64) float64 {
	var m float64
	for _, t := range times {
		if t > m {
			m = t
		}
	}
	return m
}
