package sim

import (
	"testing"
	"testing/quick"
)

func TestExecSerializes(t *testing.T) {
	tr := NewTrack("gpu0", false)
	s1, e1 := tr.Exec(0, 5, CatTeacherFwd, "")
	if s1 != 0 || e1 != 5 {
		t.Fatalf("first task [%v,%v], want [0,5]", s1, e1)
	}
	// Ready earlier than free time: must queue behind previous task.
	s2, e2 := tr.Exec(1, 3, CatStudentFwd, "")
	if s2 != 5 || e2 != 8 {
		t.Fatalf("second task [%v,%v], want [5,8]", s2, e2)
	}
	// Ready later than free time: must wait for readiness (idle gap).
	s3, _ := tr.Exec(20, 1, CatStudentBwd, "")
	if s3 != 20 {
		t.Fatalf("third task starts at %v, want 20", s3)
	}
}

func TestExecZeroDuration(t *testing.T) {
	tr := NewTrack("t", true)
	tr.Exec(0, 0, CatUpdate, "")
	if tr.FreeAt() != 0 {
		t.Fatal("zero-duration task must not advance time")
	}
	if len(tr.Intervals()) != 0 {
		t.Fatal("zero-duration tasks are not recorded")
	}
}

func TestExecNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrack("t", false).Exec(0, -1, CatLoad, "")
}

func TestBusyAccounting(t *testing.T) {
	tr := NewTrack("t", false)
	tr.Exec(0, 2, CatLoad, "")
	tr.Exec(0, 3, CatLoad, "")
	tr.Exec(0, 5, CatTeacherFwd, "")
	if tr.Busy(CatLoad) != 5 {
		t.Fatalf("load busy = %v, want 5", tr.Busy(CatLoad))
	}
	if tr.TotalBusy() != 10 {
		t.Fatalf("total busy = %v, want 10", tr.TotalBusy())
	}
}

func TestAdvanceToNeverRewinds(t *testing.T) {
	tr := NewTrack("t", false)
	tr.Exec(0, 10, CatUpdate, "")
	tr.AdvanceTo(5)
	if tr.FreeAt() != 10 {
		t.Fatal("AdvanceTo must not rewind")
	}
	tr.AdvanceTo(15)
	if tr.FreeAt() != 15 {
		t.Fatal("AdvanceTo must advance")
	}
}

func TestIntervalRecording(t *testing.T) {
	tr := NewTrack("t", true)
	tr.Exec(0, 1, CatTeacherFwd, "T0")
	tr.Exec(0, 2, CatStudentFwd, "S0")
	iv := tr.Intervals()
	if len(iv) != 2 {
		t.Fatalf("got %d intervals, want 2", len(iv))
	}
	if iv[0].Label != "T0" || iv[1].Cat != CatStudentFwd {
		t.Fatalf("bad intervals %+v", iv)
	}
	if iv[1].Start != 1 || iv[1].End != 3 {
		t.Fatalf("second interval [%v,%v], want [1,3]", iv[1].Start, iv[1].End)
	}
}

// Property: regardless of ready times and durations, intervals on a track
// never overlap and are monotonically ordered.
func TestNoOverlapProperty(t *testing.T) {
	f := func(readies []float64, durs []float64) bool {
		tr := NewTrack("t", true)
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			r, d := readies[i], durs[i]
			if r < 0 {
				r = -r
			}
			if d < 0 {
				d = -d
			}
			// Clamp to keep arithmetic finite.
			if r > 1e12 {
				r = 1e12
			}
			if d > 1e12 {
				d = 1e12
			}
			tr.Exec(r, d, CatLoad, "")
		}
		iv := tr.Intervals()
		for i := 1; i < len(iv); i++ {
			if iv[i].Start < iv[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); int(c) < NumCategories; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("category %d: empty or duplicate name %q", int(c), s)
		}
		seen[s] = true
	}
}

func TestMaxHelpers(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Fatal("Max broken")
	}
	if MaxAll() != 0 {
		t.Fatal("MaxAll of nothing should be 0")
	}
	if MaxAll(1, 5, 3) != 5 {
		t.Fatal("MaxAll broken")
	}
}
