// Package distill defines blockwise knowledge distillation at the numeric
// level: teacher/student block pairs, the per-block distillation step
// (teacher forward, student forward/backward against the teacher's output
// activation, Fig. 1 of the paper), and reproducible workbenches of small
// real networks used by the concurrent engine and its equivalence
// experiments.
//
// The numeric path exists to validate the paper's central mathematical
// claim — Pipe-BD "achieves significant acceleration without modifying
// the mathematical formulation of blockwise distillation" — with actual
// float32 training: the pipelined engine must produce bit-identical
// student weights to a sequential reference.
package distill

import (
	"fmt"
	"math/rand"

	"pipebd/internal/nn"
	"pipebd/internal/obs"
	"pipebd/internal/sim"
	"pipebd/internal/tensor"
)

// LossFunc computes a distillation loss between a student block output
// and the frozen teacher's output, returning the loss and the gradient
// with respect to the student output. Both MSE (the paper's L(Δoutput))
// and KL-with-temperature (logit distillation) have this shape.
type LossFunc func(studentOut, teacherOut *tensor.Tensor) (float64, *tensor.Tensor)

// KLLoss returns the temperature-scaled KL-divergence distillation loss
// for a pair's logits: T²·KL(softmax(teacher/T) ‖ softmax(student/T)).
func KLLoss(temp float64) LossFunc {
	return func(studentOut, teacherOut *tensor.Tensor) (float64, *tensor.Tensor) {
		return nn.KLDivLoss(studentOut, teacherOut, temp)
	}
}

// Pair is one distillation unit: a frozen teacher block and the student
// block trained to mimic it. Both consume the same input activation and
// must produce outputs of identical shape.
type Pair struct {
	Teacher nn.Layer
	Student nn.Layer
	// Loss selects the per-block distillation loss; nil means MSE on the
	// output activations, the pre-transformer default.
	Loss LossFunc
}

// lossOf resolves a pair's loss function.
func (p Pair) lossOf() LossFunc {
	if p.Loss != nil {
		return p.Loss
	}
	return nn.MSELoss
}

// Step performs one distillation step of a pair: runs the teacher block
// (inference mode), the student block (training mode), computes the
// pair's distillation loss between their outputs (MSE — the paper's
// L(Δoutput) — unless the pair selects another), and backpropagates
// through the student, accumulating parameter gradients. It returns the
// teacher's output activation (the next block's input) and the loss. The
// caller owns zeroing gradients and applying the optimizer step, so the
// engine can schedule updates per Pipe-BD's decoupled parameter update.
func Step(p Pair, x *tensor.Tensor) (teacherOut *tensor.Tensor, loss float64) {
	return StepObserved(p, x, nil)
}

// StepObserved is Step with per-phase span tracing: the teacher forward,
// the student forward (including the loss/gradient computation against
// the teacher's output), and the student backward each get their own
// span on tk. A nil (or disabled) track makes it exactly Step.
func StepObserved(p Pair, x *tensor.Tensor, tk *obs.Track) (teacherOut *tensor.Tensor, loss float64) {
	r := tk.Begin(sim.CatTeacherFwd, "teacher_fwd")
	teacherOut = p.Teacher.Forward(x, false)
	r.End()
	r = tk.Begin(sim.CatStudentFwd, "student_fwd")
	studentOut := p.Student.Forward(x, true)
	loss, grad := p.lossOf()(studentOut, teacherOut)
	r.End()
	r = tk.Begin(sim.CatStudentBwd, "student_bwd")
	p.Student.Backward(grad)
	r.End()
	return teacherOut, loss
}

// Workbench is a reproducible set of block pairs: it remembers its
// constructor so fresh, bit-identical replicas can be created for
// sequential references and data-parallel group members.
type Workbench struct {
	Pairs []Pair

	build func() []Pair
}

// NewWorkbench wraps a deterministic pair constructor. build must return
// freshly initialized pairs with identical weights on every call.
func NewWorkbench(build func() []Pair) *Workbench {
	return &Workbench{Pairs: build(), build: build}
}

// Replica returns a fresh workbench with bit-identical initial weights.
func (w *Workbench) Replica() *Workbench { return NewWorkbench(w.build) }

// SetBackend routes every teacher and student block's compute through be.
// Backends are bit-identical by contract, so this changes throughput,
// never the training trajectory.
func (w *Workbench) SetBackend(be tensor.Backend) {
	for _, p := range w.Pairs {
		nn.ApplyBackend(p.Teacher, be)
		nn.ApplyBackend(p.Student, be)
	}
}

// NumBlocks returns the number of block pairs.
func (w *Workbench) NumBlocks() int { return len(w.Pairs) }

// TeacherForward runs the full frozen teacher chain.
func (w *Workbench) TeacherForward(x *tensor.Tensor) *tensor.Tensor {
	for _, p := range w.Pairs {
		x = p.Teacher.Forward(x, false)
	}
	return x
}

// StudentForward runs the full student chain in evaluation mode.
func (w *Workbench) StudentForward(x *tensor.Tensor) *tensor.Tensor {
	for _, p := range w.Pairs {
		x = p.Student.Forward(x, false)
	}
	return x
}

// StudentParams returns the trainable parameters of one student block.
func (w *Workbench) StudentParams(block int) []*nn.Param {
	return w.Pairs[block].Student.Params()
}

// DistillLoss evaluates the current per-block distillation losses on a
// batch without training (no gradient accumulation, evaluation mode).
func (w *Workbench) DistillLoss(x *tensor.Tensor) []float64 {
	losses := make([]float64, len(w.Pairs))
	for i, p := range w.Pairs {
		tOut := p.Teacher.Forward(x, false)
		sOut := p.Student.Forward(x, false)
		l, _ := p.lossOf()(sOut, tOut)
		losses[i] = l
		x = tOut
	}
	return losses
}

// TinyConfig sizes the miniature workbench used by tests and examples: a
// scaled-down analogue of the paper's compression workload (convolutional
// teacher, depthwise-separable student).
type TinyConfig struct {
	Seed     int64
	Blocks   int
	Channels int // channel width of every block boundary
	Height   int
	Width    int
	Classes  int // classifier width of the final block (0: no classifier)
}

// DefaultTinyConfig returns the configuration the equivalence tests use.
func DefaultTinyConfig() TinyConfig {
	return TinyConfig{Seed: 42, Blocks: 4, Channels: 6, Height: 8, Width: 8, Classes: 0}
}

// NewTinyWorkbench builds a reproducible miniature distillation workload:
// each teacher block is conv3x3-BN-ReLU, each student block a
// depthwise-separable replacement (DW3x3 + PW1x1 + ReLU), mirroring the
// paper's VGG→DS-Conv compression setup at laptop scale. When
// cfg.Classes > 0 the final pair ends in a classifier head so end-to-end
// accuracy can be measured.
func NewTinyWorkbench(cfg TinyConfig) *Workbench {
	if cfg.Blocks <= 0 || cfg.Channels <= 0 {
		panic(fmt.Sprintf("distill: invalid tiny config %+v", cfg))
	}
	build := func() []Pair {
		rng := rand.New(rand.NewSource(cfg.Seed))
		pairs := make([]Pair, cfg.Blocks)
		for b := 0; b < cfg.Blocks; b++ {
			inC := cfg.Channels
			if b == 0 {
				inC = 3
			}
			teacher := nn.NewSequential(
				nn.NewConv2d(rng, inC, cfg.Channels, 3, 1, 1, false),
				nn.NewBatchNorm2d(cfg.Channels),
				nn.NewReLU(),
			)
			student := nn.NewSequential(
				nn.NewDWConv2d(rng, inC, 3, 1, 1, false),
				nn.NewConv2d(rng, inC, cfg.Channels, 1, 1, 0, true),
				nn.NewReLU(),
			)
			if cfg.Classes > 0 && b == cfg.Blocks-1 {
				tail := func(r *rand.Rand) []nn.Layer {
					return []nn.Layer{
						nn.NewGlobalAvgPool2d(),
						nn.NewFlatten(),
						nn.NewLinear(r, cfg.Channels, cfg.Classes, true),
					}
				}
				teacher.Layers = append(teacher.Layers, tail(rng)...)
				student.Layers = append(student.Layers, tail(rng)...)
			}
			pairs[b] = Pair{Teacher: teacher, Student: student}
		}
		// Freeze teacher batch norms with plausible running statistics
		// so inference-mode teacher outputs are non-degenerate.
		warm := tensor.Rand(rng, -1, 1, 8, 3, cfg.Height, cfg.Width)
		x := warm
		for _, p := range pairs {
			_ = p.Teacher.Forward(x, true) // updates running stats
			x = p.Teacher.Forward(x, false)
		}
		return pairs
	}
	return NewWorkbench(build)
}
