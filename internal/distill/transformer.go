package distill

import (
	"fmt"
	"math/rand"

	"pipebd/internal/nn"
)

// TransformerConfig sizes the miniature transformer distillation
// workbench: DistilBERT-style blockwise distillation where each block is
// one encoder layer, the student keeps the teacher's hidden width (so
// block-boundary activations align for the per-block loss) but runs a
// much narrower MLP, and the final block distills classifier logits with
// KL-with-temperature instead of hidden-state MSE.
type TransformerConfig struct {
	Seed      int64
	Blocks    int
	Dim       int // hidden width at every block boundary
	Heads     int // attention heads (must divide Dim)
	TeacherFF int // teacher MLP hidden width
	StudentFF int // student MLP hidden width
	SeqLen    int
	Vocab     int
	Classes   int     // classifier width of the final block (0: no classifier)
	Temp      float64 // KL temperature for the logit block; <= 0 means 1
}

// DefaultTransformerConfig returns the configuration the transformer
// equivalence tests use: four blocks, matching the conv workbench so
// every existing cluster plan applies unchanged.
func DefaultTransformerConfig() TransformerConfig {
	return TransformerConfig{
		Seed: 46, Blocks: 4, Dim: 8, Heads: 2,
		TeacherFF: 32, StudentFF: 8,
		SeqLen: 6, Vocab: 16, Classes: 4, Temp: 2,
	}
}

// encoderLayer is one pre-classifier transformer block: self-attention
// and MLP residuals, each followed by a LayerNorm.
func encoderLayer(rng *rand.Rand, dim, heads, ff int) []nn.Layer {
	return []nn.Layer{
		nn.NewResidual(nn.NewMultiHeadAttention(rng, dim, heads)),
		nn.NewLayerNorm(dim),
		nn.NewResidual(nn.NewFeedForward(rng, dim, ff)),
		nn.NewLayerNorm(dim),
	}
}

// NewTransformerWorkbench builds a reproducible transformer distillation
// workload. Block 0 embeds [N, SeqLen] token ids and runs one encoder
// layer; middle blocks are encoder layers over [N, SeqLen, Dim] hidden
// states distilled with MSE; when cfg.Classes > 0 the final block adds a
// mean-pool + linear classifier head and distills its logits with
// KL-with-temperature.
func NewTransformerWorkbench(cfg TransformerConfig) *Workbench {
	if cfg.Blocks <= 0 || cfg.Dim <= 0 || cfg.SeqLen <= 0 || cfg.Vocab <= 0 {
		panic(fmt.Sprintf("distill: invalid transformer config %+v", cfg))
	}
	if cfg.Heads <= 0 || cfg.Dim%cfg.Heads != 0 {
		panic(fmt.Sprintf("distill: transformer heads %d must divide dim %d", cfg.Heads, cfg.Dim))
	}
	temp := cfg.Temp
	if temp <= 0 {
		temp = 1
	}
	build := func() []Pair {
		rng := rand.New(rand.NewSource(cfg.Seed))
		pairs := make([]Pair, cfg.Blocks)
		for b := 0; b < cfg.Blocks; b++ {
			var teacher, student *nn.Sequential
			if b == 0 {
				// Both sides embed with their own tables; the block
				// boundary (and so the distillation target) is the hidden
				// state after the first encoder layer.
				teacher = nn.NewSequential(nn.NewEmbedding(rng, cfg.Vocab, cfg.SeqLen, cfg.Dim))
				student = nn.NewSequential(nn.NewEmbedding(rng, cfg.Vocab, cfg.SeqLen, cfg.Dim))
			} else {
				teacher = nn.NewSequential()
				student = nn.NewSequential()
			}
			teacher.Layers = append(teacher.Layers, encoderLayer(rng, cfg.Dim, cfg.Heads, cfg.TeacherFF)...)
			student.Layers = append(student.Layers, encoderLayer(rng, cfg.Dim, cfg.Heads, cfg.StudentFF)...)
			pair := Pair{Teacher: teacher, Student: student}
			if cfg.Classes > 0 && b == cfg.Blocks-1 {
				teacher.Layers = append(teacher.Layers, nn.NewMeanPoolSeq(), nn.NewLinear(rng, cfg.Dim, cfg.Classes, true))
				student.Layers = append(student.Layers, nn.NewMeanPoolSeq(), nn.NewLinear(rng, cfg.Dim, cfg.Classes, true))
				pair.Loss = KLLoss(temp)
			}
			pairs[b] = pair
		}
		return pairs
	}
	return NewWorkbench(build)
}
