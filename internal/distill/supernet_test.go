package distill

import (
	"math"
	"math/rand"
	"testing"

	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

func TestSupernetWorkbenchReproducible(t *testing.T) {
	a := NewTinySupernetWorkbench(DefaultSupernetConfig())
	b := NewTinySupernetWorkbench(DefaultSupernetConfig())
	for blk := 0; blk < a.NumBlocks(); blk++ {
		pa, pb := a.StudentParams(blk), b.StudentParams(blk)
		if len(pa) != len(pb) {
			t.Fatal("param counts differ")
		}
		for i := range pa {
			if !pa[i].Value.Equal(pb[i].Value) {
				t.Fatalf("block %d param %d differs", blk, i)
			}
		}
	}
}

func TestSupernetShapesAlign(t *testing.T) {
	cfg := DefaultSupernetConfig()
	w := NewTinySupernetWorkbench(cfg)
	rng := rand.New(rand.NewSource(1))
	x := tensor.Rand(rng, -1, 1, 2, 3, cfg.Height, cfg.Width)
	tOut := w.TeacherForward(x)
	sOut := w.StudentForward(x)
	if !tOut.SameShape(sOut) {
		t.Fatalf("teacher %v vs student %v", tOut.Shape(), sOut.Shape())
	}
}

func TestSupernetInitialArchitectureUniform(t *testing.T) {
	w := NewTinySupernetWorkbench(DefaultSupernetConfig())
	for b, ws := range ArchitectureWeights(w) {
		for _, v := range ws {
			if math.Abs(v-1.0/3) > 1e-9 {
				t.Fatalf("block %d initial weights %v, want uniform", b, ws)
			}
		}
	}
}

func TestSupernetSearchPrefersConv3x3(t *testing.T) {
	// The teacher block is a 3x3 convolution (plus BN/ReLU); the conv3x3
	// candidate can mimic it best, so blockwise architecture search must
	// shift probability mass onto it.
	cfg := DefaultSupernetConfig()
	w := NewTinySupernetWorkbench(cfg)
	rng := rand.New(rand.NewSource(2))
	opt := make([]*nn.SGD, w.NumBlocks())
	for b := range opt {
		opt[b] = nn.NewSGD(0.05, 0.9, 0)
	}
	for step := 0; step < 250; step++ {
		x := tensor.Rand(rng, -1, 1, 8, 3, cfg.Height, cfg.Width)
		for b := 0; b < w.NumBlocks(); b++ {
			pair := w.Pairs[b]
			nn.ZeroGrads(pair.Student.Params())
			tOut, _ := Step(pair, x)
			opt[b].Step(pair.Student.Params())
			x = tOut
		}
	}
	arch := DeriveArchitecture(w)
	weights := ArchitectureWeights(w)
	for b, choice := range arch {
		if choice != 0 {
			t.Errorf("block %d derived %s (weights %v), want conv3x3",
				b, CandidateNames[choice], weights[b])
		}
	}
}

func TestDeriveArchitecturePanicsOnNonSupernet(t *testing.T) {
	w := NewTinyWorkbench(DefaultTinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DeriveArchitecture(w)
}

func TestCandidateNamesMatchBranches(t *testing.T) {
	w := NewTinySupernetWorkbench(DefaultSupernetConfig())
	seq := w.Pairs[0].Student.(*nn.Sequential)
	mo := seq.Layers[0].(*nn.MixedOp)
	if len(CandidateNames) != len(mo.Branches) {
		t.Fatalf("%d names for %d branches", len(CandidateNames), len(mo.Branches))
	}
}
