package distill

import (
	"fmt"
	"math/rand"

	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

// Miniature NAS workload: each student block is a differentiable supernet
// cell (nn.MixedOp) whose candidates compete to mimic the teacher block —
// the numeric analogue of the paper's NAS workload, runnable through the
// same sequential and Pipe-BD engines as the compression workbench.

// SupernetConfig sizes the miniature NAS workbench.
type SupernetConfig struct {
	Seed     int64
	Blocks   int
	Channels int
	Height   int
	Width    int
}

// DefaultSupernetConfig returns the configuration used by tests and the
// mini-NAS example.
func DefaultSupernetConfig() SupernetConfig {
	return SupernetConfig{Seed: 77, Blocks: 3, Channels: 6, Height: 8, Width: 8}
}

// NewTinySupernetWorkbench builds a reproducible NAS distillation
// workload: teacher blocks are conv3x3-BN-ReLU; each student block is a
// MixedOp over three candidates — conv3x3, a depthwise-separable pair,
// and conv1x1 — followed by ReLU. Architecture parameters (α) are
// ordinary trainable parameters, so the engines' optimizers search the
// architecture while distilling, and DeriveArchitecture reads out the
// found per-block choices.
func NewTinySupernetWorkbench(cfg SupernetConfig) *Workbench {
	if cfg.Blocks <= 0 || cfg.Channels <= 0 {
		panic(fmt.Sprintf("distill: invalid supernet config %+v", cfg))
	}
	build := func() []Pair {
		rng := rand.New(rand.NewSource(cfg.Seed))
		pairs := make([]Pair, cfg.Blocks)
		for b := 0; b < cfg.Blocks; b++ {
			inC := cfg.Channels
			if b == 0 {
				inC = 3
			}
			teacher := nn.NewSequential(
				nn.NewConv2d(rng, inC, cfg.Channels, 3, 1, 1, false),
				nn.NewBatchNorm2d(cfg.Channels),
				nn.NewReLU(),
			)
			student := nn.NewSequential(
				nn.NewMixedOp(
					nn.NewConv2d(rng, inC, cfg.Channels, 3, 1, 1, true),
					nn.NewSequential(
						nn.NewDWConv2d(rng, inC, 3, 1, 1, false),
						nn.NewConv2d(rng, inC, cfg.Channels, 1, 1, 0, true),
					),
					nn.NewConv2d(rng, inC, cfg.Channels, 1, 1, 0, true),
				),
				nn.NewReLU(),
			)
			pairs[b] = Pair{Teacher: teacher, Student: student}
		}
		warm := tensor.Rand(rng, -1, 1, 8, 3, cfg.Height, cfg.Width)
		x := warm
		for _, p := range pairs {
			_ = p.Teacher.Forward(x, true)
			x = p.Teacher.Forward(x, false)
		}
		return pairs
	}
	return NewWorkbench(build)
}

// CandidateNames are the supernet's per-block candidate operations in
// MixedOp branch order.
var CandidateNames = []string{"conv3x3", "dsconv3x3", "conv1x1"}

// DeriveArchitecture reads the found architecture from a supernet
// workbench: the max-α candidate index per block. It panics if the
// workbench's student blocks are not MixedOp cells.
func DeriveArchitecture(w *Workbench) []int {
	out := make([]int, w.NumBlocks())
	for b, p := range w.Pairs {
		seq, ok := p.Student.(*nn.Sequential)
		if !ok || len(seq.Layers) == 0 {
			panic("distill: student block is not a supernet cell")
		}
		mo, ok := seq.Layers[0].(*nn.MixedOp)
		if !ok {
			panic("distill: student block is not a supernet cell")
		}
		out[b] = mo.Derive()
	}
	return out
}

// ArchitectureWeights returns each block's candidate probabilities.
func ArchitectureWeights(w *Workbench) [][]float64 {
	out := make([][]float64, w.NumBlocks())
	for b, p := range w.Pairs {
		seq := p.Student.(*nn.Sequential)
		mo := seq.Layers[0].(*nn.MixedOp)
		out[b] = mo.Weights()
	}
	return out
}
