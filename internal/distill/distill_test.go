package distill

import (
	"math/rand"
	"testing"

	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

func TestTinyWorkbenchReproducible(t *testing.T) {
	a := NewTinyWorkbench(DefaultTinyConfig())
	b := NewTinyWorkbench(DefaultTinyConfig())
	for blk := 0; blk < a.NumBlocks(); blk++ {
		pa, pb := a.StudentParams(blk), b.StudentParams(blk)
		for i := range pa {
			if !pa[i].Value.Equal(pb[i].Value) {
				t.Fatalf("block %d param %d differs across constructions", blk, i)
			}
		}
	}
}

func TestReplicaIsIndependentCopy(t *testing.T) {
	w := NewTinyWorkbench(DefaultTinyConfig())
	r := w.Replica()
	p0 := w.StudentParams(0)[0]
	r0 := r.StudentParams(0)[0]
	if !p0.Value.Equal(r0.Value) {
		t.Fatal("replica must start bit-identical")
	}
	p0.Value.Data()[0] += 1
	if p0.Value.Equal(r0.Value) {
		t.Fatal("replica must not alias the original")
	}
}

func TestStepShapesAndLoss(t *testing.T) {
	cfg := DefaultTinyConfig()
	w := NewTinyWorkbench(cfg)
	rng := rand.New(rand.NewSource(1))
	x := tensor.Rand(rng, -1, 1, 4, 3, cfg.Height, cfg.Width)
	tOut, loss := Step(w.Pairs[0], x)
	if loss <= 0 {
		t.Fatalf("untrained student should have positive loss, got %v", loss)
	}
	want := []int{4, cfg.Channels, cfg.Height, cfg.Width}
	for i, d := range want {
		if tOut.Shape()[i] != d {
			t.Fatalf("teacher output shape %v, want %v", tOut.Shape(), want)
		}
	}
	// Gradients must have accumulated on the student.
	var nonzero bool
	for _, p := range w.StudentParams(0) {
		if tensor.MaxAbs(p.Grad) > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("Step did not accumulate student gradients")
	}
}

func TestStepDoesNotTouchTeacher(t *testing.T) {
	cfg := DefaultTinyConfig()
	w := NewTinyWorkbench(cfg)
	rng := rand.New(rand.NewSource(2))
	x := tensor.Rand(rng, -1, 1, 4, 3, cfg.Height, cfg.Width)

	before := make([]*tensor.Tensor, 0)
	for _, p := range w.Pairs[0].Teacher.Params() {
		before = append(before, p.Value.Clone())
	}
	Step(w.Pairs[0], x)
	for i, p := range w.Pairs[0].Teacher.Params() {
		if !p.Value.Equal(before[i]) {
			t.Fatal("teacher weights changed during distillation step")
		}
	}
}

func TestChainGeometry(t *testing.T) {
	cfg := DefaultTinyConfig()
	w := NewTinyWorkbench(cfg)
	rng := rand.New(rand.NewSource(3))
	x := tensor.Rand(rng, -1, 1, 2, 3, cfg.Height, cfg.Width)
	tOut := w.TeacherForward(x)
	sOut := w.StudentForward(x)
	if !tOut.SameShape(sOut) {
		t.Fatalf("teacher %v and student %v outputs misaligned", tOut.Shape(), sOut.Shape())
	}
}

func TestClassifierHeadConfig(t *testing.T) {
	cfg := DefaultTinyConfig()
	cfg.Classes = 5
	w := NewTinyWorkbench(cfg)
	rng := rand.New(rand.NewSource(4))
	x := tensor.Rand(rng, -1, 1, 3, 3, cfg.Height, cfg.Width)
	out := w.TeacherForward(x)
	if out.Dim(1) != 5 {
		t.Fatalf("classifier output %v, want 5 classes", out.Shape())
	}
}

func TestDistillLossEvaluation(t *testing.T) {
	cfg := DefaultTinyConfig()
	w := NewTinyWorkbench(cfg)
	rng := rand.New(rand.NewSource(5))
	x := tensor.Rand(rng, -1, 1, 4, 3, cfg.Height, cfg.Width)
	losses := w.DistillLoss(x)
	if len(losses) != cfg.Blocks {
		t.Fatalf("got %d losses, want %d", len(losses), cfg.Blocks)
	}
	for b, l := range losses {
		if l <= 0 {
			t.Fatalf("block %d: non-positive loss %v", b, l)
		}
	}
	// Evaluation must not mutate anything: repeated calls identical.
	again := w.DistillLoss(x)
	for b := range losses {
		if losses[b] != again[b] {
			t.Fatal("DistillLoss is not a pure evaluation")
		}
	}
}

func TestTrainingOneBlockConvergesToTeacher(t *testing.T) {
	cfg := DefaultTinyConfig()
	w := NewTinyWorkbench(cfg)
	rng := rand.New(rand.NewSource(6))
	opt := nn.NewSGD(0.05, 0.9, 0)
	pair := w.Pairs[1]
	x := tensor.Rand(rng, -1, 1, 8, cfg.Channels, cfg.Height, cfg.Width)
	var first, last float64
	for step := 0; step < 600; step++ {
		nn.ZeroGrads(pair.Student.Params())
		_, loss := Step(pair, x)
		opt.Step(pair.Student.Params())
		if step == 0 {
			first = loss
		}
		last = loss
	}
	// The depthwise-separable student has far less capacity than the
	// convolutional teacher block (~96 vs ~324 weights here), so the
	// loss converges to a non-zero floor; require a 3x reduction, which
	// demonstrates optimization works without demanding the impossible.
	if last > first*0.33 {
		t.Fatalf("block distillation failed to converge: %v -> %v", first, last)
	}
}

func TestNewTinyWorkbenchPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTinyWorkbench(TinyConfig{Blocks: 0})
}
