// Package viz renders experiment results as ASCII charts: horizontal bar
// charts for the speedup figures (Fig. 4-6), stacked bars for the Fig. 2
// breakdown, and grouped bars for the Fig. 7 memory profile. The charts
// are the terminal analogue of the paper's plots and are attached to
// cmd/pipebd's output behind the -chart flag.
package viz

import (
	"fmt"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters, annotated
// with their values using the given format (e.g. "%.2fx").
func BarChart(title string, bars []Bar, width int, format string) string {
	if width < 10 {
		width = 10
	}
	var maxVal float64
	labelW := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	if maxVal <= 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	for _, b := range bars {
		n := int(b.Value / maxVal * float64(width))
		if n < 1 && b.Value > 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s |%s %s\n", labelW, b.Label,
			strings.Repeat("#", n), fmt.Sprintf(format, b.Value))
	}
	return sb.String()
}

// Segment is one component of a stacked bar.
type Segment struct {
	Name  string
	Value float64
	Fill  byte
}

// StackedBar is one row of a stacked bar chart.
type StackedBar struct {
	Label    string
	Segments []Segment
}

// Total returns the bar's height.
func (b StackedBar) Total() float64 {
	var s float64
	for _, seg := range b.Segments {
		s += seg.Value
	}
	return s
}

// StackedBarChart renders stacked horizontal bars (the Fig. 2 shape): all
// bars share one scale, each segment drawn with its fill character, with
// a legend of segment names.
func StackedBarChart(title string, bars []StackedBar, width int) string {
	if width < 10 {
		width = 10
	}
	var maxVal float64
	labelW := 0
	for _, b := range bars {
		if t := b.Total(); t > maxVal {
			maxVal = t
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	if maxVal <= 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	for _, b := range bars {
		fmt.Fprintf(&sb, "%-*s |", labelW, b.Label)
		for _, seg := range b.Segments {
			n := int(seg.Value / maxVal * float64(width))
			sb.WriteString(strings.Repeat(string(seg.Fill), n))
		}
		fmt.Fprintf(&sb, " %.2f\n", b.Total())
	}
	// Legend.
	if len(bars) > 0 {
		sb.WriteString("legend: ")
		for i, seg := range bars[0].Segments {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%c=%s", seg.Fill, seg.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GroupedBars renders groups of related bars (the Fig. 7 per-rank shape):
// each group is a label plus one bar per series.
func GroupedBars(title string, groups []string, series []string, values [][]float64, width int, format string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	var maxVal float64
	for _, row := range values {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	labelW := 0
	for _, s := range series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for gi, g := range groups {
		fmt.Fprintf(&sb, "%s\n", g)
		for si, s := range series {
			v := values[gi][si]
			n := int(v / maxVal * float64(width))
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&sb, "  %-*s |%s %s\n", labelW, s,
				strings.Repeat("#", n), fmt.Sprintf(format, v))
		}
	}
	return sb.String()
}
