package viz

import (
	"strings"
	"testing"
)

func TestBarChartScalesToWidth(t *testing.T) {
	out := BarChart("speedups", []Bar{
		{Label: "DP", Value: 1},
		{Label: "Pipe-BD", Value: 4},
	}, 40, "%.2fx")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	long := strings.Count(lines[2], "#")
	short := strings.Count(lines[1], "#")
	if long != 40 {
		t.Fatalf("max bar should fill the width, got %d", long)
	}
	if short != 10 {
		t.Fatalf("1/4 value should draw 10 chars, got %d", short)
	}
	if !strings.Contains(lines[2], "4.00x") {
		t.Fatal("value annotation missing")
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	out := BarChart("t", []Bar{{Label: "a", Value: 1000}, {Label: "b", Value: 0.001}}, 50, "%.3f")
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b") && !strings.Contains(line, "#") {
			t.Fatal("non-zero value must draw at least one char")
		}
	}
}

func TestBarChartEmpty(t *testing.T) {
	out := BarChart("t", nil, 40, "%.1f")
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestStackedBarChart(t *testing.T) {
	bars := []StackedBar{
		{Label: "Baseline", Segments: []Segment{
			{Name: "load", Value: 2, Fill: 'L'},
			{Name: "teacher", Value: 4, Fill: 'T'},
			{Name: "student", Value: 10, Fill: 'S'},
		}},
		{Label: "Pipe-BD", Segments: []Segment{
			{Name: "load", Value: 0.5, Fill: 'L'},
			{Name: "teacher", Value: 1, Fill: 'T'},
			{Name: "student", Value: 3, Fill: 'S'},
		}},
	}
	out := StackedBarChart("fig2", bars, 64)
	if !strings.Contains(out, "legend: L=load  T=teacher  S=student") {
		t.Fatalf("missing legend in %q", out)
	}
	// Baseline row: 16 total over width 64 -> 4x scale: L=8, T=16, S=40.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Baseline") {
			if strings.Count(line, "L") < 7 || strings.Count(line, "S") < 35 {
				t.Fatalf("segment scaling off: %q", line)
			}
			if !strings.Contains(line, "16.00") {
				t.Fatalf("missing total: %q", line)
			}
		}
	}
}

func TestStackedBarTotal(t *testing.T) {
	b := StackedBar{Segments: []Segment{{Value: 1}, {Value: 2.5}}}
	if b.Total() != 3.5 {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("fig7", []string{"cifar10", "imagenet"},
		[]string{"DP", "TR"},
		[][]float64{{0.4, 1.7}, {2.7, 10.9}}, 30, "%.1fGB")
	if !strings.Contains(out, "cifar10") || !strings.Contains(out, "imagenet") {
		t.Fatal("missing groups")
	}
	if !strings.Contains(out, "10.9GB") {
		t.Fatal("missing values")
	}
	// The global max (10.9) fills the width.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "10.9GB") && strings.Count(line, "#") != 30 {
			t.Fatalf("max bar should fill width: %q", line)
		}
	}
}

func TestGroupedBarsEmpty(t *testing.T) {
	out := GroupedBars("t", nil, nil, nil, 30, "%.1f")
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart should say so")
	}
}
