// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the repository's design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment end to end (profiling,
// planning, simulated epochs) with truncated passes so a full sweep stays
// in seconds; per-iteration metrics report the headline quantity (e.g.
// speedup over DP) so the shape results are visible in benchmark output.
package pipebd

import (
	"testing"

	"pipebd/internal/bench"
	"pipebd/internal/experiments"
	"pipebd/internal/hw"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

// benchOpts truncates simulated passes so benchmark iterations stay fast
// while remaining deep in steady state.
var benchOpts = experiments.Options{Batch: 256, MaxSteps: 40}

// BenchmarkFig2Breakdown regenerates the motivational breakdown (Fig. 2).
func BenchmarkFig2Breakdown(b *testing.B) {
	sys := hw.A6000x4()
	var gap float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2(sys, benchOpts)
		gap = rows[0].Total() / rows[1].Total() // baseline vs ideal
	}
	b.ReportMetric(gap, "baseline/ideal")
}

// BenchmarkFig4SpeedupAblation regenerates the full ablation (Fig. 4).
func BenchmarkFig4SpeedupAblation(b *testing.B) {
	sys := hw.A6000x4()
	var best float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(sys, benchOpts)
		for _, r := range rows {
			if r.Strategy == "TR+DPU+AHD" && r.Speedup > best {
				best = r.Speedup
			}
		}
	}
	b.ReportMetric(best, "max-speedup-x")
}

// BenchmarkFig5GPUSensitivity regenerates the GPU-type study (Fig. 5).
func BenchmarkFig5GPUSensitivity(b *testing.B) {
	var a6000Speedup float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(benchOpts)
		for _, r := range res.Rows {
			if r.Workload == "4x RTX A6000" && r.Strategy == "TR+DPU+AHD" {
				a6000Speedup = r.Speedup
			}
		}
	}
	b.ReportMetric(a6000Speedup, "a6000-speedup-x")
}

// BenchmarkFig6BatchSensitivity regenerates the batch sweep (Fig. 6).
func BenchmarkFig6BatchSensitivity(b *testing.B) {
	sys := hw.A6000x4()
	var atSmallBatch float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(sys, benchOpts)
		for _, r := range rows {
			if r.Batch == 128 && r.Dataset == "cifar10" && r.Strategy == "TR+DPU+AHD" {
				atSmallBatch = r.Speedup
			}
		}
	}
	b.ReportMetric(atSmallBatch, "speedup-b128-x")
}

// BenchmarkFig7Memory regenerates the per-rank memory study (Fig. 7).
func BenchmarkFig7Memory(b *testing.B) {
	sys := hw.A6000x4()
	var trOverDP float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(sys, benchOpts)
		var dp, tr float64
		for _, r := range rows {
			if r.Dataset != "imagenet" {
				continue
			}
			switch r.Strategy {
			case "DP":
				dp = r.MaxGB
			case "TR":
				tr = r.MaxGB
			}
		}
		trOverDP = tr / dp
	}
	b.ReportMetric(trOverDP, "tr/dp-mem")
}

// BenchmarkTable2TrainingResults regenerates Table II's elapsed-time
// columns (accuracy proxy excluded: see BenchmarkNumericEquivalence).
func BenchmarkTable2TrainingResults(b *testing.B) {
	sys := hw.A6000x4()
	var pipeBDSpeedup float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(sys, benchOpts, true)
		pipeBDSpeedup = rows[0].DPEpoch / rows[0].PipeBDEpoch
	}
	b.ReportMetric(pipeBDSpeedup, "nas-cifar-speedup-x")
}

// BenchmarkNumericEquivalence measures the real concurrent engine: one
// pipelined mini-epoch of actual float32 blockwise distillation (Table
// II's training-quality evidence), once per tensor compute backend. The
// backends are bit-identical, so the sub-benchmarks differ only in how
// the host's cores are used. The definition lives in the shared registry
// (internal/bench), which cmd/pipebd-bench measures too — one source of
// truth for both harnesses.
func BenchmarkNumericEquivalence(b *testing.B) {
	for _, c := range bench.Pipeline(false) {
		c := c
		b.Run(c.Name+"/"+c.Backend, func(b *testing.B) { c.Run(b) })
	}
}

// BenchmarkTransformerWorkload measures the transformer blockwise
// distillation path: the skinny batched attention GEMMs the PR 9
// dispatch rework learned to pack, the multi-head-attention training
// step, and a pipelined transformer mini-epoch per backend. The
// definitions live in the shared registry (internal/bench), so
// cmd/pipebd-bench pins the same numbers in BENCH_PR9.json.
func BenchmarkTransformerWorkload(b *testing.B) {
	for _, c := range bench.Transformer(false) {
		c := c
		b.Run(c.Name+"/"+c.Backend, func(b *testing.B) { c.Run(b) })
	}
}

// BenchmarkFaultRecovery measures the transient-fault absorption tier
// against the global-cut restart it replaces: the same tiny loopback ring
// run with one identical mid-run link break, once absorbed by
// reconnect-and-replay and once recovered by restarting every device from
// the cut. The definitions live in the shared registry so
// cmd/pipebd-bench pins the same numbers in BENCH_PR10.json.
func BenchmarkFaultRecovery(b *testing.B) {
	for _, c := range bench.Recovery(false) {
		c := c
		b.Run(c.Name, func(b *testing.B) { c.Run(b) })
	}
}

// BenchmarkTraceOverhead measures the observability layer's span
// Begin/End pair, disabled (the default every hot path pays) and enabled
// (what -trace-out opts into). The definition lives in the shared
// registry so cmd/pipebd-bench pins the same numbers in BENCH_PR7.json.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, c := range bench.Trace() {
		c := c
		b.Run(c.Name, func(b *testing.B) { c.Run(b) })
	}
}

// --- ablation benches -------------------------------------------------------

// BenchmarkAblationOccupancyModel compares Pipe-BD's speedup with and
// without the occupancy derating — isolating how much of the win comes
// from per-device batch utilization versus redundancy removal.
func BenchmarkAblationOccupancyModel(b *testing.B) {
	w := model.NAS(false)
	run := func(sys hw.System) float64 {
		cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: benchOpts.MaxSteps}
		prof := profilegen.Measure(w, sys.GPUs[0], 256, 4, 10)
		plan := sched.TRContiguous(prof, 4)
		return pipeline.RunDP(cfg).EpochTime / pipeline.RunTR(cfg, plan, true, "TR+DPU").EpochTime
	}
	var withOcc, flat float64
	for i := 0; i < b.N; i++ {
		withOcc = run(hw.A6000x4())
		sysFlat := hw.A6000x4()
		for j := range sysFlat.GPUs {
			sysFlat.GPUs[j].SaturationElems = 0 // disable derating
		}
		flat = run(sysFlat)
	}
	b.ReportMetric(withOcc, "speedup-occupancy-x")
	b.ReportMetric(flat, "speedup-flat-x")
}

// BenchmarkAblationAHDvsNaive compares AHD's profiled hybrid plan against
// the naive contiguous distribution on the workload where it matters most
// (NAS/ImageNet, Fig. 5's block-0 dominance).
func BenchmarkAblationAHDvsNaive(b *testing.B) {
	w := model.NAS(true)
	sys := hw.A6000x4()
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: benchOpts.MaxSteps}
	var gain float64
	for i := 0; i < b.N; i++ {
		prof := profilegen.Measure(w, sys.GPUs[0], 256, 4, 10)
		naive := pipeline.RunTR(cfg, sched.TRContiguous(prof, 4), true, "TR+DPU")
		ahd := pipeline.RunTR(cfg, sched.AHD(prof, sys, sched.DefaultAHDConfig()), true, "TR+DPU+AHD")
		gain = naive.EpochTime / ahd.EpochTime
	}
	b.ReportMetric(gain, "ahd-gain-x")
}

// BenchmarkAblationDPUBarrier isolates decoupled parameter update: the
// same plan with and without the per-step barrier.
func BenchmarkAblationDPUBarrier(b *testing.B) {
	w := model.Compression(false)
	sys := hw.A6000x4()
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: benchOpts.MaxSteps}
	var gain float64
	for i := 0; i < b.N; i++ {
		prof := profilegen.Measure(w, sys.GPUs[0], 256, 4, 10)
		plan := sched.TRContiguous(prof, 4)
		barrier := pipeline.RunTR(cfg, plan, false, "TR")
		dpu := pipeline.RunTR(cfg, plan, true, "TR+DPU")
		gain = barrier.EpochTime / dpu.EpochTime
	}
	b.ReportMetric(gain, "dpu-gain-x")
}

// BenchmarkAblationLoaderBandwidth removes the shared-loader constraint
// (infinite storage bandwidth, free per-batch cost) to expose how much of
// DP's deficit is data loading.
func BenchmarkAblationLoaderBandwidth(b *testing.B) {
	w := model.NAS(false)
	var normal, infinite float64
	run := func(sys hw.System) float64 {
		cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: benchOpts.MaxSteps}
		return pipeline.RunDP(cfg).EpochTime
	}
	for i := 0; i < b.N; i++ {
		normal = run(hw.A6000x4())
		sysInf := hw.A6000x4()
		sysInf.Host.StorageBandwidth = 1e15
		sysInf.Host.PerBatchOverhead = 0
		sysInf.Host.Cores = 1 << 20
		infinite = run(sysInf)
	}
	b.ReportMetric(normal/infinite, "dp-loading-overhead-x")
}

// BenchmarkSimulatorThroughput measures the raw simulator: simulated
// steps per second for the most complex executor (hybrid TR).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := model.NAS(true)
	sys := hw.A6000x4()
	prof := profilegen.Measure(w, sys.GPUs[0], 256, 4, 10)
	plan := sched.AHD(prof, sys, sched.DefaultAHDConfig())
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.RunTR(cfg, plan, true, "TR+DPU+AHD")
	}
}
