// Package pipebd is a Go reproduction of "Pipe-BD: Pipelined Parallel
// Blockwise Distillation" (Jang et al., DATE 2023, arXiv:2301.12443).
//
// The repository implements the paper's scheduling contribution — teacher
// relaying, decoupled parameter update, and automatic hybrid distribution
// — along with both baselines (data-parallel block-by-block training and
// layerwise bin-packing scheduling), on two substrates:
//
//   - a deterministic analytic multi-GPU simulator (internal/hw,
//     internal/cost, internal/sim, internal/pipeline) that regenerates
//     every table and figure of the paper's evaluation, and
//   - a real concurrent training engine (internal/nn, internal/distill,
//     internal/engine) that validates the mathematical-equivalence claim
//     with actual float32 training and goroutine-per-device pipelines.
//
// # Compute backends
//
// The numeric engine's kernels run on a pluggable tensor.Backend. Two
// implementations ship: "serial", the single-threaded reference, and
// "parallel", which row-partitions the GEMM family (and im2col/col2im and
// elementwise ops) across a process-wide bounded worker pool sized by
// GOMAXPROCS. Backends are bit-identical by contract — parallel
// partitioning only ever splits along dimensions that keep each output
// element's floating-point accumulation sequence intact — so the
// engine's bit-equivalence guarantees hold on every backend, and backend
// choice (tensor.SetDefault, engine.Config.Backend, or cmd/pipebd's
// -backend/-workers flags) is purely a throughput knob. A scratch-buffer
// arena (tensor.Arena) recycles im2col and gradient temporaries across
// training steps, keeping the steady-state hot path allocation-light.
//
// # Transformer workload
//
// Blockwise distillation is workload-agnostic, and the repository proves
// it with a second model family shaped nothing like the conv nets: a
// DistilBERT-style miniature transformer (distill.NewTransformerWorkbench,
// cmd/pipebd -cluster-model transformer). Each block is one encoder
// layer — multi-head self-attention and a feed-forward MLP as residuals,
// each followed by LayerNorm — where the student keeps the teacher's
// hidden width (so block-boundary activations align for the per-block
// loss) but runs a much narrower MLP. Block 0 embeds token ids (learned
// token + position tables); middle blocks distill hidden states with
// MSE; the final block adds a mean-pool + linear classifier head and
// distills its logits with KL divergence at a temperature
// (distill.KLLoss — gradients scaled by T² in the standard Hinton
// convention). The supporting ops live in internal/nn (Embedding,
// MultiHeadAttention, LayerNorm, GELU, FeedForward, MeanPoolSeq,
// max-subtracted SoftmaxLastDim and its backward), all with full
// finite-difference-checked gradients and eval-forward cache
// invalidation; token-sequence datasets (dataset.NewTokens) are
// deterministic and carry a wire.DataSpec recipe (Kind "tokens"), so
// ring workers regenerate token batches locally exactly as they do
// image batches. Attention's per-head GEMMs are skinny — m equals the
// sequence length — and run through the batched kernel entry points
// (tensor.MatMulBatch and friends), whose dispatch weighs the whole
// batch rather than one instance, so they reach the packed engine
// instead of stranding on the reference path. The transformer workload
// passes through every layer above unchanged: serial, parallel, hub,
// and ring runs are bit-identical, pinned by the transformer
// equivalence suites in internal/engine and internal/cluster and the
// cluster-transformer CI job.
//
// # Cluster execution
//
// The internal/cluster subsystem runs the same pipelined schedule across
// worker processes: a coordinator (cmd/pipebd -cluster) maps a plan's
// devices onto pipebd-worker processes over a pluggable transport
// (in-memory loopback or length-prefixed TCP), broadcasts the model spec,
// seed parameters, and batches, and routes teacher-relay activations and
// intra-group gradient all-reduce frames between stages. Workers drive
// the identical engine.RunMember device loop behind a transport-backed
// engine.DeviceLink, and the wire codec carries floats bit-exactly, so a
// cluster run reproduces RunPipelined's trajectory bit-for-bit.
//
// Two data-plane topologies ship (cluster.Config.Topology, cmd/pipebd
// -topology). "hub" routes every tensor through the coordinator. "ring"
// — the CLI default — has the workers dial each other from a
// coordinator-distributed placement directory (epoch-guarded so stale
// dials from a superseded attempt never join a fresh mesh): forwarded
// activations travel stage-to-stage over peer links, and split groups
// average gradients with a reduce-scatter + ring all-gather that folds
// contributions in the hub's exact ascending-rank order. The
// coordinator is demoted to a control plane — training inputs are
// prestaged or regenerated worker-locally from a deterministic dataset
// recipe, so its steady-state traffic no longer scales with activation,
// gradient, or input size — and both topologies are bit-identical to
// the in-process pipeline and to each other.
//
// # Fault tolerance
//
// Failures are handled in three tiers, each strictly cheaper than the
// next, and every tier preserves bit-identity.
//
// Tier 1, absorb (cluster.Config.Retry, cmd/pipebd -retry-budget /
// -retry-backoff): every control and peer connection is wrapped in a
// resumable stream (transport.Resumable) — both sides count received
// frames, the sender buffers its unacknowledged tail, and a broken link
// redials with exponential backoff, re-handshakes on the peer's
// high-water mark, and replays exactly the missed frames. Transient
// flaps and healing partitions cost milliseconds and consume no restart
// budget; the heartbeat monitor treats a reconnecting link as alive, so
// a flap outlasting the heartbeat timeout is not mistaken for a dead
// worker.
//
// Tier 2, degrade: a peer link persistently down past the retry budget
// whose workers both still answer a liveness probe is routed through
// the coordinator hub instead — activations as relay frames, the
// affected group's all-reduce via the hub fold — while healthy edges
// stay peer-to-peer. Hub and ring fold in the same order, so a degraded
// run still verifies bit-identical, and no restart is consumed.
//
// Tier 3, global cut (cluster.Config.MaxRestarts): a genuinely lost
// worker costs a restart. Each device streams a post-step snapshot
// (student parameters + optimizer velocities) to the coordinator, which
// also retains undelivered inputs and completed gradient reductions.
// When a worker's connection dies — or goes silent past the heartbeat
// timeout — the coordinator re-places the lost devices on a surviving
// or re-joined worker via a Resume frame, restores the snapshots over
// the wire, and replays the affected steps; replayed work is a pure
// function of the restored state, so the recovered run's losses and
// trained weights stay bit-identical to a fault-free run. Ring runs
// recover by a global-cut restart instead of surgical re-placement — a
// lost worker strands its ring peers mid-collective, so every device
// restarts from the newest commonly snapshotted, fully accounted step —
// with the same bit-identity guarantee. transport.Chaos injects
// deterministic, seeded fault schedules (connection kills, transient
// flaps, healing or persistent partitions, latency spikes, delays,
// truncated frames) to prove all three tiers, both in the test suites
// and from the CLI (-chaos-kills, -chaos-flaps, -chaos-partition).
//
// Snapshot traffic follows a policy (cluster.Config.Snapshot): interval k
// snapshots every k-th step, and rank-0 dedup ships one snapshot per
// split group instead of one per member, committed only once every
// member's losses, output shards, and barrier arrivals are accounted for.
//
// # Durable runs
//
// The coordinator itself stops being a single point of failure when a
// run is durable (cluster.Config.LedgerDir, cmd/pipebd -ledger): the
// internal/cluster/ledger package persists the run's manifest (plan,
// model spec, hyperparameters, batches, seed weights) via atomic rename
// and every piece of recovery state — snapshots, retained inputs, output
// shards, gradient reductions, loss rows, barrier releases — to an
// append-only, CRC-framed record log. cluster.ResumeRun (cmd/pipebd
// -resume) restarts a killed coordinator from that ledger: it replays
// the log up to the last complete record (a tail torn by the kill is
// truncated away), re-attaches every worker through the wire Resume
// machinery, and finishes the run bit-identical to an uninterrupted one.
// The ledger's durability tier is configurable (-fsync none, interval=N,
// or always: page cache, bounded fdatasync, or sync-per-append), and
// flags passed alongside -resume become checked expectations against the
// manifest instead of being silently ignored.
//
// # Dynamic repartitioning
//
// A run whose placement turns out wrong — one device measurably slower
// than the profile assumed — can rebalance itself mid-run
// (cluster.Config.Repartition, cmd/pipebd -repartition). The
// coordinator folds the span batches workers already ship into measured
// per-block compute costs (obs.StepAggregator; transport waits
// excluded), re-derives the contiguous partition from those costs
// (sched.Replan), and, when the predicted improvement clears a
// threshold with hysteresis, executes a planned global cut at a
// synchronous step boundary: workers are told the session is
// superseded, the carry regroups at block boundaries onto the new
// placement, and the run resumes on the rebalanced plan via the same
// snapshot machinery ring recovery uses — without consuming the restart
// budget. Only all-unsplit plans may repartition (moving a contiguous
// boundary relocates work without reordering any float fold, so the
// bit-identity pin survives; split groups are refused — the seam for a
// future async/1F1B schedule). Cuts append to the ledger as repartition
// records, so durable runs resume across plan generations:
// cluster.ResumeRun replays each superseded generation under the plan
// that produced it and remaps the carry across the recorded boundary.
// pipebd-worker -slowdown N provides a reproducible bit-identical
// straggler for exercising the controller.
//
// # Observability
//
// The internal/obs package instruments the real runtime the way the
// simulator instruments virtual time: engine device loops, cluster
// workers, and the coordinator record per-step spans (forwards,
// backwards, updates, all-reduce phases, peer sends and ack waits,
// snapshot writes, ledger appends) on per-goroutine tracks over the
// sim.Category taxonomy. Tracing is off by default and near-free when
// disabled — one nil check plus one atomic load per site, no allocation
// — guarded by TestDisabledTracingOverhead and the TraceOverhead bench.
// Cluster workers ship span batches to the coordinator at step
// boundaries over a dedicated wire frame (codec v5) or dump locally
// (pipebd-worker -trace-dir). Exports: Chrome trace-event JSON (pipebd
// -trace-out, loadable in chrome://tracing or Perfetto) and a measured
// utilization report printed side-by-side with the cost model's
// prediction of the same schedule — the measured-vs-modeled comparison
// that now also feeds the runtime repartitioner. Both CLIs also expose
// -net-stats (transport.Meter role-attributed byte totals) and
// -debug-addr (net/http/pprof plus a plain-text /metrics counter page).
// Shared test helpers (the goroutine-leak assertion) live in
// internal/testutil.
//
// See README.md for the quickstart and architecture inventory and
// ROADMAP.md for open items. The benchmarks in bench_test.go regenerate
// each table and figure under `go test -bench`; cmd/pipebd-bench captures
// kernel (including the skinny batched attention GEMMs), pipeline-step
// (conv and transformer), trace-overhead, cluster-recovery,
// coordinator-resume, hub-vs-ring topology throughput (with per-role
// coordinator/peer bytes-per-step), the straggler
// static-vs-repartition latency pair, and the fault-recovery
// absorb-vs-global-cut latency pair as JSON (BENCH_PR10.json;
// BENCH_PR2–PR9.json are the prior baselines), and BenchmarkMatMul in
// internal/tensor compares the backends directly.
package pipebd
