// Package pipebd is a Go reproduction of "Pipe-BD: Pipelined Parallel
// Blockwise Distillation" (Jang et al., DATE 2023, arXiv:2301.12443).
//
// The repository implements the paper's scheduling contribution — teacher
// relaying, decoupled parameter update, and automatic hybrid distribution
// — along with both baselines (data-parallel block-by-block training and
// layerwise bin-packing scheduling), on two substrates:
//
//   - a deterministic analytic multi-GPU simulator (internal/hw,
//     internal/cost, internal/sim, internal/pipeline) that regenerates
//     every table and figure of the paper's evaluation, and
//   - a real concurrent training engine (internal/nn, internal/distill,
//     internal/engine) that validates the mathematical-equivalence claim
//     with actual float32 training and goroutine-per-device pipelines.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-versus-measured results, and cmd/pipebd for the experiment
// runner. The benchmarks in bench_test.go regenerate each table and
// figure under `go test -bench`.
package pipebd
