// Numeric equivalence: train a real (miniature) blockwise-distillation
// workload three ways — sequentially, as a Pipe-BD pipeline with
// decoupled updates, and with a hybrid data-parallel group — and verify
// the paper's claim that Pipe-BD changes scheduling, not mathematics:
// the pipelined run produces bit-identical student weights.
package main

import (
	"fmt"
	"math/rand"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/sched"
)

func main() {
	cfg := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(7)), 160, 3, cfg.Height, cfg.Width, 4)
	batches := data.Batches(8)

	// Reference: plain sequential blockwise distillation.
	seq := distill.NewTinyWorkbench(cfg)
	seqRes := engine.RunSequential(seq, batches, 0.05, 0.9)

	// Pipe-BD: two devices, teacher relaying + decoupled updates,
	// running as real goroutines with channel relays.
	pipe := distill.NewTinyWorkbench(cfg)
	plan := sched.Plan{Name: "tr", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2, 3}},
	}}
	pipeRes := engine.RunPipelined(pipe, batches, engine.Config{
		Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9,
	})

	// Hybrid: AHD-style group sharing block 0-1 across two devices.
	hybrid := distill.NewTinyWorkbench(cfg)
	hplan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	engine.RunPipelined(hybrid, batches, engine.Config{
		Plan: hplan, DPU: true, LR: 0.05, Momentum: 0.9,
	})

	fmt.Println("block losses, first -> last step:")
	for b := range seqRes.Loss {
		n := len(seqRes.Loss[b])
		fmt.Printf("  block %d: sequential %.4f -> %.4f   pipelined %.4f -> %.4f\n",
			b, seqRes.Loss[b][0], seqRes.Loss[b][n-1], pipeRes.Loss[b][0], pipeRes.Loss[b][n-1])
	}

	bitIdentical := true
	closeEnough := true
	for b := 0; b < seq.NumBlocks(); b++ {
		ps, pp, ph := seq.StudentParams(b), pipe.StudentParams(b), hybrid.StudentParams(b)
		for i := range ps {
			if !ps[i].Value.Equal(pp[i].Value) {
				bitIdentical = false
			}
			if !ps[i].Value.AllClose(ph[i].Value, 1e-3, 1e-3) {
				closeEnough = false
			}
		}
	}
	fmt.Println()
	fmt.Println("pipelined TR+DPU weights bit-identical to sequential:", bitIdentical)
	fmt.Println("hybrid-group weights match sequential within 1e-3:   ", closeEnough)
	if !bitIdentical || !closeEnough {
		panic("equivalence violated — Pipe-BD must not change the mathematics")
	}
}
