// Mini-NAS: the paper's NAS workload in miniature, with real training.
// Each student block is a differentiable supernet cell (three candidate
// operations weighted by trainable architecture parameters, as in the
// paper's §VI-A description). Blockwise distillation against the teacher
// searches the architecture; the run executes as a real Pipe-BD pipeline
// (goroutines + channel relaying + decoupled updates) and is verified to
// match sequential search bit for bit — scheduling never changes what
// architecture is found.
package main

import (
	"fmt"
	"math/rand"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/sched"
)

func main() {
	cfg := distill.DefaultSupernetConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(5)), 200, 3, cfg.Height, cfg.Width, 4)
	var batches []dataset.Batch
	for epoch := 0; epoch < 10; epoch++ {
		batches = append(batches, data.Batches(8)...)
	}

	// Sequential reference search.
	seq := distill.NewTinySupernetWorkbench(cfg)
	engine.RunSequential(seq, batches, 0.05, 0.9)

	// Pipe-BD pipelined search: two devices, teacher relaying + DPU.
	pipe := distill.NewTinySupernetWorkbench(cfg)
	plan := sched.Plan{Name: "tr", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2}},
	}}
	res := engine.RunPipelined(pipe, batches, engine.Config{
		Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9,
	})

	fmt.Println("architecture search results (candidate probabilities):")
	archSeq := distill.DeriveArchitecture(seq)
	archPipe := distill.DeriveArchitecture(pipe)
	weights := distill.ArchitectureWeights(pipe)
	for b := range archPipe {
		fmt.Printf("  block %d: ", b)
		for c, name := range distill.CandidateNames {
			fmt.Printf("%s=%.2f ", name, weights[b][c])
		}
		fmt.Printf("-> %s\n", distill.CandidateNames[archPipe[b]])
	}

	fmt.Println("\nfinal distillation losses:", formatLosses(res.FinalLoss()))

	same := true
	for b := range archSeq {
		if archSeq[b] != archPipe[b] {
			same = false
		}
	}
	fmt.Println("pipelined search finds the same architecture as sequential:", same)
	if !same {
		panic("architecture search diverged between schedules")
	}
}

func formatLosses(ls []float64) string {
	out := ""
	for i, l := range ls {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.4f", l)
	}
	return out
}
