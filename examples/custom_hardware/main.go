// Custom hardware: define your own GPU/system model and watch automatic
// hybrid distribution adapt the schedule — the Fig. 5 story ("Pipe-BD
// automatically determines the appropriate schedule according to the
// environment") extended to hardware that does not exist yet.
package main

import (
	"fmt"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

// hypothetical builds an imaginary accelerator: compute scaled relative
// to an A6000, with the memory system held fixed. High compute:bandwidth
// ratios make bandwidth-bound blocks (ImageNet's block 0) relatively more
// dominant, pushing AHD toward wider sharing.
func hypothetical(name string, computeScale float64) hw.System {
	g := hw.RTXA6000()
	g.Name = name
	g.PeakFLOPS *= computeScale
	gpus := make([]hw.GPU, 4)
	for i := range gpus {
		gpus[i] = g
	}
	return hw.System{Name: "4x " + name, GPUs: gpus, Link: hw.PCIe4(), Host: hw.EPYC7302Host()}
}

func main() {
	w := model.NAS(true)
	batch := 256

	systems := []hw.System{
		hw.RTX2080Tix4(),
		hw.A6000x4(),
		hypothetical("FutureGPU-2x", 2.0),
		hypothetical("FutureGPU-4x", 4.0),
	}

	fmt.Println("AHD schedule adaptation, NAS / ImageNet, batch", batch)
	header := []string{"system", "chosen schedule", "epoch", "speedup vs DP"}
	var rows [][]string
	for _, sys := range systems {
		if err := sys.Validate(); err != nil {
			panic(err)
		}
		prof := profilegen.Measure(w, sys.GPUs[0], batch, sys.NumDevices(), 100)
		plan := sched.AHD(prof, sys, sched.DefaultAHDConfig())
		cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: batch}
		dp := pipeline.RunDP(cfg)
		pb := pipeline.RunTR(cfg, plan, true, "TR+DPU+AHD")
		rows = append(rows, []string{
			sys.Name, plan.Describe(),
			metrics.FormatSeconds(pb.EpochTime),
			fmt.Sprintf("%.2fx", pb.Speedup(dp)),
		})
	}
	fmt.Print(metrics.Table(header, rows))
	fmt.Println("\nFaster compute leaves bandwidth-bound early blocks towering over the")
	fmt.Println("rest, so the planner widens data-parallel sharing of block 0 — the same")
	fmt.Println("trend the paper observes moving from the 2080Ti to the A6000 (Fig. 5).")
}
