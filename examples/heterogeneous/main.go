// Heterogeneous devices: the paper's stated future direction (§VIII)
// implemented as an AHD extension. A node mixing two RTX A6000s with two
// RTX 2080Tis is scheduled three ways: naive equal-share data
// parallelism, the homogeneous planner (which cannot see the speed
// difference), and the heterogeneity-aware planner that both places block
// ranges against per-device speeds and splits batches proportionally to
// member throughput.
package main

import (
	"fmt"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

func main() {
	w := model.NAS(true)
	sys := sched.HeteroSystem("2x A6000 + 2x 2080Ti", hw.PCIe4(), hw.EPYC7302Host(),
		hw.RTXA6000(), hw.RTXA6000(), hw.RTX2080Ti(), hw.RTX2080Ti())
	batch := 256
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: batch}

	// Naive: treat the node as homogeneous data parallelism.
	naive := sched.InternalRelaying(sys.NumDevices(), w.NumBlocks())
	naiveRep := pipeline.RunTR(cfg, naive, true, "IR equal-split")

	// Homogeneous AHD: profiled against the first GPU only, equal shares.
	prof := profilegen.Measure(w, sys.GPUs[0], batch, sys.NumDevices(), 100)
	homo := sched.AHD(prof, sys, sched.DefaultAHDConfig())
	homoRep := pipeline.RunTR(cfg, homo, true, "AHD (homogeneous)")

	// Heterogeneity-aware AHD: per-device costing + proportional shares.
	hetero := sched.AHDHetero(w, sys, batch, sched.DefaultHeteroConfig())
	heteroRep := pipeline.RunTR(cfg, hetero, true, "AHD (hetero-aware)")

	fmt.Printf("NAS / ImageNet on %s, batch %d\n\n", sys.Name, batch)
	header := []string{"planner", "schedule", "epoch", "vs naive"}
	var rows [][]string
	for _, r := range []metrics.Report{naiveRep, homoRep, heteroRep} {
		rows = append(rows, []string{
			r.Strategy, r.ScheduleDesc,
			metrics.FormatSeconds(r.EpochTime),
			fmt.Sprintf("%.2fx", r.Speedup(naiveRep)),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	fmt.Println("\nPer-member batch shares of the hetero-aware plan:")
	for _, g := range hetero.Groups {
		for j, d := range g.Devices {
			fmt.Printf("  dev%d (%s): %d samples\n", d, sys.GPUs[d].Name, g.MemberBatch(batch, j))
		}
	}
}
