// Quickstart: build a blockwise-distillation workload, profile it, let
// Pipe-BD plan a schedule, and compare simulated epoch times against the
// data-parallel baseline — the library's core loop in ~40 lines.
package main

import (
	"fmt"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

func main() {
	// 1. Pick a workload (teacher/student pair + dataset) and a system.
	workload := model.NAS(false) // MobileNetV2 -> ProxylessNAS on CIFAR-10
	system := hw.A6000x4()
	batch := 256

	// 2. Profile every block at every feasible batch split — Pipe-BD's
	//    pre-training measurement pass (§V-B of the paper).
	profile := profilegen.Measure(workload, system.GPUs[0], batch, system.NumDevices(), 100)

	// 3. Plan: plain teacher relaying and automatic hybrid distribution.
	trPlan := sched.TRContiguous(profile, system.NumDevices())
	ahdPlan := sched.AHD(profile, system, sched.DefaultAHDConfig())
	fmt.Println("TR plan :", trPlan.Describe())
	fmt.Println("AHD plan:", ahdPlan.Describe())

	// 4. Simulate one epoch under each schedule.
	cfg := pipeline.Config{Workload: workload, System: system, GlobalBatch: batch}
	dp := pipeline.RunDP(cfg)
	tr := pipeline.RunTR(cfg, trPlan, true, "TR+DPU")
	pipeBD := pipeline.RunTR(cfg, ahdPlan, true, "TR+DPU+AHD")

	fmt.Println()
	for _, r := range []metrics.Report{dp, tr, pipeBD} {
		fmt.Printf("%-12s epoch %-10s speedup %.2fx\n",
			r.Strategy, metrics.FormatSeconds(r.EpochTime), r.Speedup(dp))
	}
}
