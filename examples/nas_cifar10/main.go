// NAS on CIFAR-10: the paper's first workload end to end — full ablation
// (DP, LS, TR, TR+DPU, TR+IR, TR+DPU+AHD), the Fig. 2 style breakdown of
// where each schedule spends its time, and the per-rank memory footprint.
package main

import (
	"fmt"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
)

func main() {
	w := model.NAS(false)
	sys := hw.A6000x4()
	batch := 256
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: batch}

	prof := profilegen.Measure(w, sys.GPUs[0], batch, sys.NumDevices(), 100)
	trPlan := sched.TRContiguous(prof, sys.NumDevices())
	ahdPlan := sched.AHD(prof, sys, sched.DefaultAHDConfig())

	reports := []metrics.Report{
		pipeline.RunDP(cfg),
		pipeline.RunLS(cfg),
		pipeline.RunTR(cfg, trPlan, false, "TR"),
		pipeline.RunTR(cfg, trPlan, true, "TR+DPU"),
		pipeline.RunIR(cfg),
		pipeline.RunTR(cfg, ahdPlan, true, "TR+DPU+AHD"),
	}
	dp := reports[0]

	fmt.Printf("NAS / CIFAR-10 on %s, batch %d\n\n", sys.Name, batch)
	header := []string{"strategy", "epoch", "speedup", "load", "teacher", "student", "idle", "peak mem"}
	var rows [][]string
	for _, r := range reports {
		load, teacher, student, idle := r.FigTwoBreakdown()
		rows = append(rows, []string{
			r.Strategy,
			metrics.FormatSeconds(r.EpochTime),
			fmt.Sprintf("%.2fx", r.Speedup(dp)),
			fmt.Sprintf("%.1fs", load),
			fmt.Sprintf("%.1fs", teacher),
			fmt.Sprintf("%.1fs", student),
			fmt.Sprintf("%.1fs", idle),
			fmt.Sprintf("%.2fGB", float64(r.PeakMemory())/(1<<30)),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	fmt.Println("\nWhere the DP baseline loses its time (per rank):")
	for i, rank := range dp.Ranks {
		fmt.Printf("  rank %d: teacher %.1fs (redundant prefix), load %.1fs, idle %.1fs\n",
			i, rank.Busy[sim.CatTeacherFwd], rank.Busy[sim.CatLoad], rank.Idle)
	}
	fmt.Println("\nPipe-BD schedule:", reports[5].ScheduleDesc)
}
