// Model compression on ImageNet: the paper's heaviest workload
// (VGG-16 -> DS-Conv student). Shows why the LS baseline collapses here
// (redundant teacher prefixes over a 15.5 GMAC teacher) and how teacher
// relaying plus decoupled updates recover the time, with the per-rank
// memory story of Fig. 7.
package main

import (
	"fmt"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
)

func main() {
	w := model.Compression(true)
	sys := hw.A6000x4()
	batch := 256

	fmt.Printf("Model compression / ImageNet on %s\n", sys.Name)
	fmt.Printf("teacher %s: %.1fM params, %.1f GMACs\n",
		w.Teacher.Net.Name, float64(w.Teacher.Net.ParamCount())/1e6, w.Teacher.Net.MACs()/1e9)
	fmt.Printf("student %s: %.1fM params, %.1f GMACs\n\n",
		w.Student.Net.Name, float64(w.Student.Net.ParamCount())/1e6, w.Student.Net.MACs()/1e9)

	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: batch}
	prof := profilegen.Measure(w, sys.GPUs[0], batch, sys.NumDevices(), 100)
	trPlan := sched.TRContiguous(prof, sys.NumDevices())
	ahdPlan := sched.AHD(prof, sys, sched.DefaultAHDConfig())

	dp := pipeline.RunDP(cfg)
	ls := pipeline.RunLS(cfg)
	tr := pipeline.RunTR(cfg, trPlan, true, "TR+DPU")
	pb := pipeline.RunTR(cfg, ahdPlan, true, "TR+DPU+AHD")

	header := []string{"strategy", "epoch", "speedup", "teacher exec (all ranks)"}
	var rows [][]string
	for _, r := range []metrics.Report{dp, ls, tr, pb} {
		var teacher float64
		for _, rank := range r.Ranks {
			teacher += rank.Busy[sim.CatTeacherFwd]
		}
		rows = append(rows, []string{
			r.Strategy, metrics.FormatSeconds(r.EpochTime),
			fmt.Sprintf("%.2fx", r.Speedup(dp)),
			metrics.FormatSeconds(teacher),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	fmt.Println("\nLS re-executes the teacher prefix for every layer task; TR runs each")
	fmt.Println("teacher block exactly once per step and relays the activation instead.")

	fmt.Println("\nPer-rank peak memory (GB):")
	for _, r := range []metrics.Report{dp, tr, pb} {
		fmt.Printf("  %-12s", r.Strategy)
		for _, rank := range r.Ranks {
			fmt.Printf("  %5.2f", float64(rank.PeakMemBytes)/(1<<30))
		}
		fmt.Println()
	}
	fmt.Println("\nPipe-BD schedule:", pb.ScheduleDesc)
}
