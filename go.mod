module pipebd

go 1.24
